"""Tests for the streaming checking subsystem (IncrementalChecker + parsers)."""

import io
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core import IsolationLevel, check
from repro.core.model import History, Transaction, read, write
from repro.core.violations import ViolationKind
from repro.histories.formats import load_history, save_history, stream_history
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    inject_anomaly,
)
from repro.stream import IncrementalChecker, check_stream

from helpers import PAPER_VERDICTS, all_paper_histories

LEVELS = list(IsolationLevel)
FORMAT_EXTS = [("native", ".json"), ("plume", ".plume"), ("dbcop", ".dbcop"), ("cobra", ".cobra")]


def _unowned(txn):
    """A fresh Transaction copy (History-owned ones carry dense ids)."""
    return Transaction(txn.operations, committed=txn.committed, label=txn.label)


def feed_in_order(history, checker):
    """Feed a history session by session (the on-disk file order)."""
    for sid, session in enumerate(history.sessions):
        for tid in session:
            checker.append(sid, _unowned(history.transactions[tid]))


def interleaved(history, rng):
    """A random stream interleaving that respects per-session order."""
    positions = [0] * history.num_sessions
    while True:
        live = [
            sid
            for sid in range(history.num_sessions)
            if positions[sid] < len(history.sessions[sid])
        ]
        if not live:
            return
        sid = rng.choice(live)
        tid = history.sessions[sid][positions[sid]]
        positions[sid] += 1
        yield sid, _unowned(history.transactions[tid])


def assert_matches_batch(history, stream_results, check_messages=False):
    for level in LEVELS:
        batch = check(history, level)
        streamed = stream_results[level]
        assert streamed.is_consistent == batch.is_consistent, level
        assert sorted(v.kind.name for v in streamed.violations) == sorted(
            v.kind.name for v in batch.violations
        ), level
        if check_messages:
            assert [v.message for v in streamed.violations] == [
                v.message for v in batch.violations
            ], level


class TestStreamingParsers:
    @pytest.mark.parametrize("fmt,ext", FORMAT_EXTS)
    def test_stream_agrees_with_load(self, tmp_path, fmt, ext):
        history = all_paper_histories()["fig_1b"]
        path = tmp_path / f"h{ext}"
        save_history(history, str(path), fmt=fmt)
        loaded = load_history(str(path), fmt=fmt)
        sessions = {}
        for sid, txn in stream_history(str(path), fmt=fmt):
            sessions.setdefault(sid, []).append(txn)
        ordered = [sessions[sid] for sid in sorted(sessions)]
        restreamed = History.from_sessions(ordered)
        assert restreamed.num_operations == loaded.num_operations
        assert restreamed.num_transactions == loaded.num_transactions
        for got, want in zip(restreamed.transactions, loaded.transactions):
            assert got.committed == want.committed
            assert list(got.operations) == list(want.operations)

    def test_native_stream_survives_tiny_chunks(self):
        from repro.histories.formats import native

        history = all_paper_histories()["fig_1a"]
        text = native.dumps(history)

        class OneChar(io.StringIO):
            def read(self, size=-1):
                return super().read(1)

        pairs = list(native.stream(OneChar(text)))
        assert len(pairs) == history.num_transactions

    def test_cobra_stream_rejects_split_transactions(self):
        from repro.core.exceptions import ParseError
        from repro.histories.formats import cobra

        text = "0,0,W,x,1,1\n0,1,W,x,2,1\n0,0,W,y,1,1\n"
        with pytest.raises(ParseError):
            list(cobra.stream(io.StringIO(text)))

    def test_json_stream_rejects_trailing_garbage(self):
        """Concatenated/rewritten captures must error like the batch parser."""
        from repro.core.exceptions import ParseError
        from repro.histories.formats import native

        text = native.dumps(all_paper_histories()["fig_4a"])
        with pytest.raises(ParseError):
            list(native.stream(io.StringIO(text + ' {"oops": 1}')))

    @pytest.mark.parametrize("module_name", ["plume_text", "cobra"])
    def test_line_based_streams_reject_empty_input(self, module_name):
        """A truncated/empty capture must error like loads, not pass as consistent."""
        import importlib

        from repro.core.exceptions import ParseError

        module = importlib.import_module(f"repro.histories.formats.{module_name}")
        with pytest.raises(ParseError):
            list(module.stream(io.StringIO("")))

    def test_plume_stream_is_lazy(self):
        from repro.histories.formats import plume_text

        def lines():
            yield "session=0 txn=a committed ops= W(x,1)"
            yield "session=1 txn=b committed ops= R(x,1)"
            raise AssertionError("must not be pulled")

        iterator = plume_text.stream(lines())
        sid, txn = next(iterator)
        assert sid == 0 and txn.label == "a"


class TestIncrementalCheckerParity:
    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    def test_paper_histories_match_batch_exactly(self, name):
        history = all_paper_histories()[name]
        checker = IncrementalChecker(num_sessions=history.num_sessions)
        feed_in_order(history, checker)
        # Labeled histories reproduce the batch witnesses verbatim.
        assert_matches_batch(history, checker.finalize(), check_messages=True)

    @pytest.mark.parametrize("kind", INJECTABLE_ANOMALIES, ids=lambda k: k.name)
    def test_injected_anomalies_match_batch(self, kind):
        base = generate_random_history(
            RandomHistoryConfig(num_sessions=3, num_transactions=15, seed=5)
        )
        history = inject_anomaly(base, kind)
        checker = IncrementalChecker(num_sessions=history.num_sessions)
        feed_in_order(history, checker)
        assert_matches_batch(history, checker.finalize())

    def test_out_of_order_reads_resolve_on_write_arrival(self):
        # Session 1's read arrives before the write it observes.
        t_read = Transaction([read("x", 1)], label="reader")
        t_write = Transaction([write("x", 1)], label="writer")
        history = History.from_sessions([[t_write], [t_read]])
        checker = IncrementalChecker(num_sessions=2)
        checker.append(1, _unowned(t_read))
        assert checker.violations == []  # not witnessable yet
        checker.append(0, _unowned(t_write))
        assert_matches_batch(history, checker.finalize())

    def test_single_session_uses_linear_specialization(self):
        history = History.from_sessions(
            [[Transaction([write("x", 1)]), Transaction([read("x", 1)])]]
        )
        checker = IncrementalChecker(num_sessions=1)
        feed_in_order(history, checker)
        result = checker.finalize()[IsolationLevel.READ_ATOMIC]
        assert result.checker == "awdit-stream-1session"
        assert result.is_consistent

    def test_causality_cycle_reported_like_batch(self):
        t1 = Transaction([write("x", 1), read("y", 1)], label="t1")
        t2 = Transaction([write("y", 1), read("x", 1)], label="t2")
        history = History.from_sessions([[t1], [t2]])
        checker = IncrementalChecker(num_sessions=2)
        feed_in_order(history, checker)
        assert_matches_batch(history, checker.finalize(), check_messages=True)

    def test_append_after_finalize_rejected(self):
        checker = IncrementalChecker()
        checker.finalize()
        with pytest.raises(RuntimeError):
            checker.append(0, Transaction([write("x", 1)]))


class TestEarlyReporting:
    def test_read_violations_witnessed_before_finalize(self):
        checker = IncrementalChecker()
        checker.append(0, Transaction([write("x", 1), write("x", 2)], label="w"))
        checker.append(1, Transaction([read("x", 1)], label="r"))
        kinds = [v.kind for v in checker.violations]
        assert ViolationKind.NOT_LATEST_WRITE in kinds

    def test_aborted_read_witnessed_when_writer_arrives(self):
        checker = IncrementalChecker()
        checker.append(0, Transaction([read("x", 1)], label="r"))
        assert checker.violations == []
        checker.append(1, Transaction([write("x", 1)], committed=False, label="a"))
        kinds = [v.kind for v in checker.violations]
        assert kinds == [ViolationKind.ABORTED_READ]

    def test_operations_are_not_retained(self):
        checker = IncrementalChecker()
        for i in range(20):
            checker.append(0, Transaction([write("x", i), read("x", i)]))
        # The streaming state keeps transaction-level summaries only: once a
        # transaction is folded in, its per-read records are dropped.
        assert all(txn.reads == [] for txn in checker._txns)
        assert not hasattr(checker._txns[0], "operations")


class TestStreamingProperties:
    """Streaming and batch checking are observationally identical."""

    @settings(
        max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        config=st.builds(
            RandomHistoryConfig,
            num_sessions=st.integers(1, 5),
            num_transactions=st.integers(0, 30),
            num_keys=st.integers(1, 6),
            min_ops_per_txn=st.just(1),
            max_ops_per_txn=st.integers(1, 6),
            read_fraction=st.floats(0.2, 0.8),
            abort_probability=st.sampled_from([0.0, 0.15]),
            mode=st.sampled_from(["serializable", "random_reads"]),
            seed=st.integers(0, 10_000),
        ),
        order_seed=st.integers(0, 10_000),
    )
    def test_streaming_matches_batch_on_random_histories(self, config, order_seed):
        history = generate_random_history(config)
        checker = IncrementalChecker(num_sessions=history.num_sessions)
        checker.extend(interleaved(history, random.Random(order_seed)))
        results = checker.finalize()
        for level in LEVELS:
            batch = check(history, level)
            streamed = results[level]
            assert streamed.is_consistent == batch.is_consistent, level
            assert sorted(v.kind.name for v in streamed.violations) == sorted(
                v.kind.name for v in batch.violations
            ), level
            # The replayed commit relation is structurally identical too.
            assert streamed.stats.get("inferred_edges") == batch.stats.get(
                "inferred_edges"
            ), level


class TestLargeStreamedLog:
    def test_streams_a_large_plume_log_without_loading_it(self, tmp_path):
        config = RandomHistoryConfig(
            num_sessions=6,
            num_transactions=4000,
            num_keys=200,
            min_ops_per_txn=4,
            max_ops_per_txn=8,
            mode="serializable",
            seed=3,
        )
        history = generate_random_history(config)
        path = tmp_path / "large.plume"
        save_history(history, str(path), fmt="plume")
        result = check_stream(
            stream_history(str(path), fmt="plume"), IsolationLevel.CAUSAL_CONSISTENCY
        )
        assert result.is_consistent
        assert result.num_operations == history.num_operations
        assert result.num_transactions == history.num_transactions


class TestCliStream:
    def test_check_stream_flag(self, tmp_path, capsys):
        history = all_paper_histories()["fig_4d"]
        path = tmp_path / "ok.json"
        save_history(history, str(path))
        assert main(["check", str(path), "-i", "cc", "--stream"]) == 0
        out = capsys.readouterr().out
        assert "CONSISTENT" in out and "awdit-stream" in out

    def test_check_stream_flag_reports_violations(self, tmp_path, capsys):
        history = all_paper_histories()["fig_4a"]
        path = tmp_path / "bad.plume"
        save_history(history, str(path), fmt="plume")
        assert main(["check", str(path), "-i", "rc", "--stream"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "cycle" in out

    def test_check_stream_rejects_baselines(self, tmp_path):
        path = tmp_path / "h.json"
        save_history(all_paper_histories()["fig_4d"], str(path))
        assert main(["check", str(path), "--stream", "--checker", "plume"]) == 2
