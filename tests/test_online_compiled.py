"""Tests for the compiled streaming core (repro.core.compiled.online)."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IsolationLevel, check
from repro.core.exceptions import HistoryFormatError
from repro.core.model import History, Transaction, read, write
from repro.core.violations import ViolationKind
from repro.histories.formats import save_history, stream_raw_history
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    inject_anomaly,
)
from repro.stream import (
    CompiledIncrementalChecker,
    IncrementalChecker,
    check_stream_compiled,
    load_checkpoint,
)

from helpers import PAPER_VERDICTS, all_paper_histories

LEVELS = list(IsolationLevel)


def raw_records(history):
    """The history's raw records in file order (what stream_ops would yield)."""
    for sid, session in enumerate(history.sessions):
        for tid in session:
            txn = history.transactions[tid]
            yield sid, (
                txn.label,
                txn.committed,
                [(op.is_write, op.key, op.value) for op in txn.operations],
            )


def feed_in_order(history, checker):
    for sid, (label, committed, ops) in raw_records(history):
        checker.append_raw(sid, label, committed, ops)


def interleaved_records(history, rng):
    """A random record interleaving that respects per-session order."""
    positions = [0] * history.num_sessions
    while True:
        live = [
            sid
            for sid in range(history.num_sessions)
            if positions[sid] < len(history.sessions[sid])
        ]
        if not live:
            return
        sid = rng.choice(live)
        txn = history.transactions[history.sessions[sid][positions[sid]]]
        positions[sid] += 1
        yield sid, (
            txn.label,
            txn.committed,
            [(op.is_write, op.key, op.value) for op in txn.operations],
        )


def assert_matches_batch(history, stream_results, check_messages=False):
    for level in LEVELS:
        batch = check(history, level)
        streamed = stream_results[level]
        assert streamed.is_consistent == batch.is_consistent, level
        assert sorted(v.kind.name for v in streamed.violations) == sorted(
            v.kind.name for v in batch.violations
        ), level
        assert streamed.stats.get("inferred_edges") == batch.stats.get(
            "inferred_edges"
        ), level
        if check_messages:
            assert [v.message for v in streamed.violations] == [
                v.message for v in batch.violations
            ], level


class TestCompiledOnlineParity:
    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    def test_paper_histories_match_batch_exactly(self, name):
        history = all_paper_histories()[name]
        checker = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        feed_in_order(history, checker)
        assert_matches_batch(history, checker.finalize(), check_messages=True)

    @pytest.mark.parametrize("kind", INJECTABLE_ANOMALIES, ids=lambda k: k.name)
    def test_injected_anomalies_match_batch(self, kind):
        base = generate_random_history(
            RandomHistoryConfig(num_sessions=3, num_transactions=15, seed=5)
        )
        history = inject_anomaly(base, kind)
        checker = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        feed_in_order(history, checker)
        assert_matches_batch(history, checker.finalize())

    def test_matches_object_streaming_checker_verbatim(self):
        """The two streaming engines agree message for message."""
        history = inject_anomaly(
            generate_random_history(
                RandomHistoryConfig(
                    num_sessions=4, num_transactions=25, mode="random_reads", seed=8
                )
            ),
            ViolationKind.CAUSALITY_CYCLE,
        )
        compiled = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        feed_in_order(history, compiled)
        obj = IncrementalChecker(num_sessions=history.num_sessions)
        for sid, session in enumerate(history.sessions):
            for tid in session:
                obj.append(sid, history.transactions[tid])
        compiled_results = compiled.finalize()
        object_results = obj.finalize()
        for level in LEVELS:
            assert [v.message for v in compiled_results[level].violations] == [
                v.message for v in object_results[level].violations
            ], level

    def test_stream_from_file_uses_no_model_objects(self, tmp_path):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=3, num_transactions=30, seed=2)
        )
        path = tmp_path / "h.plume"
        save_history(history, str(path), fmt="plume")
        result = check_stream_compiled(
            stream_raw_history(str(path), fmt="plume"),
            IsolationLevel.CAUSAL_CONSISTENCY,
        )
        batch = check(history, IsolationLevel.CAUSAL_CONSISTENCY)
        assert result.is_consistent == batch.is_consistent
        assert result.num_operations == history.num_operations

    def test_operations_are_not_retained(self):
        checker = CompiledIncrementalChecker()
        for i in range(20):
            checker.append_raw(
                0, None, True, [(True, "x", i), (False, "x", i)]
            )
        # Columnar state: resolved transactions keep no per-read objects.
        assert not checker._live_reads
        assert not checker._prefold

    def test_append_after_finalize_rejected(self):
        checker = CompiledIncrementalChecker()
        checker.finalize()
        with pytest.raises(RuntimeError):
            checker.append_raw(0, None, True, [(True, "x", 1)])

    def test_value_cardinality_guard(self, monkeypatch):
        import repro.core.compiled.online as online

        # Shrink the interned-value budget instead of interning 2^32 values.
        monkeypatch.setattr(online, "_VALUE_SHIFT", 2)
        checker = CompiledIncrementalChecker()
        with pytest.raises(HistoryFormatError):
            checker.append_raw(
                0, None, True, [(True, "x", value) for value in range(5)]
            )


class TestDuplicateWriteResolution:
    """Duplicate (key, value) writes resolve to the last write in txn-id order."""

    def history(self):
        # t0's W(x,1) is non-final; t1's is final.  Batch resolves R(x,1) to
        # t1 (the last (x,1) write in transaction-id order): consistent.
        t0 = Transaction([write("x", 1), write("x", 2)], label="t0")
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([read("x", 1)], label="t2")
        return History.from_sessions([[t0], [t1], [t2]])

    @pytest.mark.parametrize("engine", ["object", "compiled"])
    def test_in_order_feed_matches_batch(self, engine):
        history = self.history()
        for level in LEVELS:
            batch = check(history, level)
            streamed = check(history, level, engine=engine, mode="stream")
            assert streamed.is_consistent == batch.is_consistent, (engine, level)
            assert sorted(v.kind.name for v in streamed.violations) == sorted(
                v.kind.name for v in batch.violations
            ), (engine, level)

    @pytest.mark.parametrize(
        "cls", [IncrementalChecker, CompiledIncrementalChecker], ids=["object", "compiled"]
    )
    def test_superseding_write_rebinds_parked_transactions(self, cls):
        # The reader resolves its x-read against the non-final "loser" while
        # parked on its y-read; the superseding "winner" write arrives before
        # the y-write unparks it, so the read must rebind to the winner.
        tl = Transaction([write("x", 5), write("x", 6)], label="loser")
        tr = Transaction([read("x", 5), read("y", 9)], label="reader")
        tw = Transaction([write("x", 5)], label="winner")
        ty = Transaction([write("y", 9)], label="ywriter")
        history = History.from_sessions([[tl], [tr], [tw], [ty]])
        checker = cls(num_sessions=4)
        if cls is CompiledIncrementalChecker:
            feed_in_order(history, checker)
        else:
            for sid, session in enumerate(history.sessions):
                for tid in session:
                    checker.append(sid, history.transactions[tid])
        results = checker.finalize()
        for level in LEVELS:
            batch = check(history, level)
            assert results[level].is_consistent == batch.is_consistent, level
            assert sorted(v.kind.name for v in results[level].violations) == sorted(
                v.kind.name for v in batch.violations
            ), level

    def test_same_transaction_duplicate_writes(self):
        # Two identical writes inside one transaction: the later one is the
        # final write, so an external read of the value is clean -- batch
        # and both streaming engines must agree.
        t0 = Transaction([write("x", 7), write("x", 7)], label="t0")
        t1 = Transaction([read("x", 7)], label="t1")
        history = History.from_sessions([[t0], [t1]])
        for engine in ("object", "compiled"):
            for level in LEVELS:
                batch = check(history, level)
                streamed = check(history, level, engine=engine, mode="stream")
                assert streamed.is_consistent == batch.is_consistent, (engine, level)


class TestCheckpointResume:
    def _records(self, seed=9, n=40):
        history = generate_random_history(
            RandomHistoryConfig(
                num_sessions=4, num_transactions=n, mode="random_reads", seed=seed
            )
        )
        return history, list(raw_records(history))

    def test_round_trip_mid_history_is_equivalent(self, tmp_path):
        history, records = self._records()
        full = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        full.extend_raw(records)
        want = full.finalize()

        half = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        half.extend_raw(records[: len(records) // 2])
        path = tmp_path / "state.awd"
        half.save_checkpoint(str(path))

        resumed = load_checkpoint(str(path))
        assert resumed.num_transactions == len(records) // 2
        resumed.extend_raw(records[len(records) // 2 :])
        got = resumed.finalize()
        for level in LEVELS:
            assert got[level].is_consistent == want[level].is_consistent, level
            assert [v.message for v in got[level].violations] == [
                v.message for v in want[level].violations
            ], level
            assert got[level].stats.get("inferred_edges") == want[level].stats.get(
                "inferred_edges"
            ), level

    def test_checkpoint_rejects_finalized_checker(self, tmp_path):
        checker = CompiledIncrementalChecker()
        checker.finalize()
        with pytest.raises(RuntimeError):
            checker.save_checkpoint(str(tmp_path / "state.awd"))

    def test_load_rejects_non_checkpoint_files(self, tmp_path):
        path = tmp_path / "bogus.awd"
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(HistoryFormatError):
            load_checkpoint(str(path))

    def test_checkpoint_write_is_atomic(self, tmp_path):
        checker = CompiledIncrementalChecker()
        checker.append_raw(0, None, True, [(True, "x", 1)])
        path = tmp_path / "state.awd"
        checker.save_checkpoint(str(path))
        assert not (tmp_path / "state.awd.tmp").exists()
        assert load_checkpoint(str(path)).num_transactions == 1

    def test_resume_rejects_a_different_history_file(self, tmp_path):
        from repro.stream import check_stream_file

        history_a, records = self._records(seed=1)
        history_b, _ = self._records(seed=2)
        path_a = tmp_path / "a.plume"
        path_b = tmp_path / "b.plume"
        save_history(history_a, str(path_a), fmt="plume")
        save_history(history_b, str(path_b), fmt="plume")
        state = tmp_path / "state.awd"
        check_stream_file(
            str(path_a),
            IsolationLevel.CAUSAL_CONSISTENCY,
            fmt="plume",
            checkpoint=str(state),
        )
        with pytest.raises(HistoryFormatError):
            check_stream_file(
                str(path_b),
                IsolationLevel.CAUSAL_CONSISTENCY,
                fmt="plume",
                checkpoint=str(state),
                resume=True,
            )

    def test_resume_applies_the_new_witness_budget(self, tmp_path):
        from repro.stream import check_stream_file

        # Two independent commit-order cycles (the Fig. 4a gadget on x and
        # again on y), so the witness budget is observable.
        history = History.from_sessions(
            [
                [Transaction([write("x", 1)]), Transaction([write("x", 2)])],
                [Transaction([read("x", 2), read("x", 1)])],
                [Transaction([write("y", 1)]), Transaction([write("y", 2)])],
                [Transaction([read("y", 2), read("y", 1)])],
            ]
        )
        path = tmp_path / "h.plume"
        save_history(history, str(path), fmt="plume")
        state = tmp_path / "state.awd"
        first = check_stream_file(
            str(path),
            IsolationLevel.READ_COMMITTED,
            fmt="plume",
            checkpoint=str(state),
            max_witnesses=5,
        )
        cycles = [
            v for v in first.violations
            if v.kind is ViolationKind.COMMIT_ORDER_CYCLE
        ]
        assert len(cycles) == 2
        resumed = check_stream_file(
            str(path),
            IsolationLevel.READ_COMMITTED,
            fmt="plume",
            checkpoint=str(state),
            resume=True,
            max_witnesses=1,
        )
        resumed_cycles = [
            v for v in resumed.violations
            if v.kind is ViolationKind.COMMIT_ORDER_CYCLE
        ]
        assert len(resumed_cycles) == 1


class TestLiveStats:
    def test_peaks_track_parked_reads(self):
        checker = CompiledIncrementalChecker()
        # A read whose write arrives two appends later parks in between.
        checker.append_raw(0, None, True, [(False, "x", 1)])
        stats = checker.live_stats()
        assert stats["pending_reads"] == 1
        assert stats["unfolded_transactions"] == 1
        checker.append_raw(1, None, True, [(True, "y", 9)])
        checker.append_raw(2, None, True, [(True, "x", 1)])
        stats = checker.live_stats()
        assert stats["pending_reads"] == 0
        assert stats["peak_pending_reads"] == 1
        assert stats["unfolded_transactions"] == 0
        # Peak of 2: the parked reader plus the writer in flight during its
        # own append (counted until it folds at the end of the call).
        assert stats["peak_unfolded_transactions"] == 2
        assert stats["interned_keys"] == 2
        assert stats["writes_index"] == 2

    def test_cc_buckets_and_edge_log_reported(self):
        history = generate_random_history(
            RandomHistoryConfig(
                num_sessions=3, num_transactions=30, mode="random_reads", seed=4
            )
        )
        checker = CompiledIncrementalChecker(num_sessions=3)
        feed_in_order(history, checker)
        stats = checker.live_stats()
        assert stats["transactions"] == history.num_transactions
        assert stats["cc_writer_buckets"] > 0


class TestCompiledOnlineProperties:
    """The compiled online core is observationally identical to batch."""

    @settings(
        max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        config=st.builds(
            RandomHistoryConfig,
            num_sessions=st.integers(1, 5),
            num_transactions=st.integers(0, 30),
            num_keys=st.integers(1, 6),
            min_ops_per_txn=st.just(1),
            max_ops_per_txn=st.integers(1, 6),
            read_fraction=st.floats(0.2, 0.8),
            abort_probability=st.sampled_from([0.0, 0.15]),
            mode=st.sampled_from(["serializable", "random_reads"]),
            seed=st.integers(0, 10_000),
        ),
        order_seed=st.integers(0, 10_000),
    )
    def test_matches_batch_on_random_interleavings(self, config, order_seed):
        history = generate_random_history(config)
        checker = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        for sid, (label, committed, ops) in interleaved_records(
            history, random.Random(order_seed)
        ):
            checker.append_raw(sid, label, committed, ops)
        assert_matches_batch(history, checker.finalize())
