"""Tests for the SAT solver, the acyclicity theory, and the SAT-based checkers."""

import itertools

import pytest

from repro.baselines.sat.acyclicity import AcyclicityEncoder
from repro.baselines.sat.monosat import check_cc_monosat
from repro.baselines.sat.polysi import check_si_polysi
from repro.baselines.sat.serializable import check_serializability
from repro.baselines.sat.solver import SATSolver
from repro.core import IsolationLevel, check
from repro.core.model import History, Transaction, read, write
from repro.histories.generator import RandomHistoryConfig, generate_random_history

from helpers import PAPER_VERDICTS, all_paper_histories, fig_4d


class TestSATSolver:
    def test_trivially_satisfiable(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        model = solver.solve()
        assert model is not None and model[a]

    def test_trivially_unsatisfiable(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        solver.add_clause([-a])
        assert solver.solve() is None

    def test_empty_clause_is_unsat(self):
        solver = SATSolver()
        solver.add_clause([])
        assert solver.solve() is None

    def test_zero_literal_rejected(self):
        solver = SATSolver()
        with pytest.raises(ValueError):
            solver.add_clause([0])

    def test_tautologies_are_dropped(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a, -a])
        assert solver.num_clauses == 0
        assert solver.solve() is not None

    def test_unit_propagation_chain(self):
        solver = SATSolver()
        variables = solver.new_vars(5)
        solver.add_clause([variables[0]])
        for left, right in zip(variables, variables[1:]):
            solver.add_clause([-left, right])
        model = solver.solve()
        assert model is not None
        assert all(model[v] for v in variables)

    def test_satisfiable_3cnf(self):
        solver = SATSolver()
        a, b, c = solver.new_vars(3)
        solver.add_clause([a, b, c])
        solver.add_clause([-a, b])
        solver.add_clause([-b, c])
        solver.add_clause([-c, -a])
        model = solver.solve()
        assert model is not None
        # Verify the model satisfies every clause.
        def val(lit):
            return model[abs(lit)] if lit > 0 else not model[abs(lit)]
        for clause in [[a, b, c], [-a, b], [-b, c], [-c, -a]]:
            assert any(val(lit) for lit in clause)

    def test_pigeonhole_3_into_2_is_unsat(self):
        solver = SATSolver()
        holes = 2
        pigeons = 3
        var = {}
        for p in range(pigeons):
            for h in range(holes):
                var[(p, h)] = solver.new_var()
        for p in range(pigeons):
            solver.add_clause([var[(p, h)] for h in range(holes)])
        for h in range(holes):
            for p1, p2 in itertools.combinations(range(pigeons), 2):
                solver.add_clause([-var[(p1, h)], -var[(p2, h)]])
        assert solver.solve() is None

    def test_assumptions_respected(self):
        solver = SATSolver()
        a, b = solver.new_vars(2)
        solver.add_clause([a, b])
        model = solver.solve(assumptions=[-a])
        assert model is not None and model[b] and not model[a]

    def test_conflicting_assumption_is_unsat(self):
        solver = SATSolver()
        a = solver.new_var()
        solver.add_clause([a])
        assert solver.solve(assumptions=[-a]) is None

    def test_moderate_random_instances_agree_with_bruteforce(self):
        import random

        rng = random.Random(4)
        for _ in range(15):
            num_vars = 6
            clauses = []
            for _ in range(rng.randint(5, 18)):
                clause = [
                    rng.choice([1, -1]) * rng.randint(1, num_vars)
                    for _ in range(rng.randint(1, 3))
                ]
                clauses.append(clause)
            solver = SATSolver()
            solver.new_vars(num_vars)
            for clause in clauses:
                solver.add_clause(clause)
            got = solver.solve() is not None
            expected = any(
                all(
                    any(
                        (lit > 0) == bool(assignment[abs(lit) - 1])
                        for lit in clause
                    )
                    for clause in clauses
                )
                for assignment in itertools.product([False, True], repeat=num_vars)
            )
            assert got == expected


class TestAcyclicityEncoder:
    def test_hard_cycle_is_unsat(self):
        encoder = AcyclicityEncoder(2)
        encoder.add_hard_edge(0, 1)
        encoder.add_hard_edge(1, 0)
        assert encoder.solve() is None

    def test_required_edges_forming_cycle_is_unsat(self):
        encoder = AcyclicityEncoder(2)
        encoder.require_edge(0, 1)
        encoder.require_edge(1, 0)
        assert encoder.solve() is None

    def test_choice_avoids_cycle(self):
        encoder = AcyclicityEncoder(2)
        encoder.add_hard_edge(0, 1)
        # Either edge direction may be picked, but only 0->1 keeps acyclicity.
        encoder.add_clause([encoder.edge_var(1, 0), encoder.edge_var(0, 1)])
        chosen = encoder.solve()
        assert chosen is not None
        assert (1, 0) not in chosen

    def test_acyclic_selection_returned(self):
        encoder = AcyclicityEncoder(3)
        encoder.require_edge(0, 1)
        encoder.require_edge(1, 2)
        chosen = encoder.solve()
        assert set(chosen) == {(0, 1), (1, 2)}


class TestSATCheckers:
    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    def test_monosat_matches_cc_verdict(self, name):
        history = all_paper_histories()[name]
        assert check_cc_monosat(history).is_consistent == PAPER_VERDICTS[name][2]

    def test_monosat_agrees_with_awdit_on_random_histories(self):
        for seed in range(6):
            history = generate_random_history(
                RandomHistoryConfig(
                    seed=seed, mode="random_reads", num_transactions=15, num_keys=4
                )
            )
            assert (
                check_cc_monosat(history).is_consistent
                == check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
            )

    def test_serializable_histories_accepted_by_ser_and_si(self):
        for seed in range(4):
            history = generate_random_history(
                RandomHistoryConfig(seed=seed, num_transactions=15, num_keys=5)
            )
            assert check_serializability(history).is_consistent
            assert check_si_polysi(history).is_consistent

    def test_fig_4d_shows_si_ser_are_stronger_than_cc(self):
        # Fig. 4d is CC-consistent but exhibits a lost update, so both the
        # SI and the SER checkers must reject it.
        history = fig_4d()
        assert check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
        assert not check_si_polysi(history).is_consistent
        assert not check_serializability(history).is_consistent

    def test_weak_violations_are_also_si_violations(self):
        # Completeness of PolySI for weak anomalies: a CC violation is always
        # an SI violation too (SI ⊑ CC).
        history = all_paper_histories()["fig_4c"]
        assert not check_si_polysi(history).is_consistent

    def test_write_skew_violates_ser_but_not_si(self):
        # The classic write-skew anomaly: disjoint writes based on reads of
        # each other's keys.  Allowed under SI, rejected under SER.
        t0 = Transaction([write("x", 0), write("y", 0)], label="init")
        t1 = Transaction([read("x", 0), read("y", 0), write("x", 1)], label="t1")
        t2 = Transaction([read("x", 0), read("y", 0), write("y", 2)], label="t2")
        history = History.from_sessions([[t0], [t1], [t2]])
        assert check_si_polysi(history).is_consistent
        assert not check_serializability(history).is_consistent

    def test_serializable_simple_chain(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([read("x", 1), write("x", 2)], label="t2")
        t3 = Transaction([read("x", 2)], label="t3")
        history = History.from_sessions([[t1], [t2], [t3]])
        assert check_serializability(history).is_consistent
