"""Columnar fold state: clock-join kernel parity, park-queue behavior,
cross-version checkpoints, GC tuning, and batch-size validation.

The tentpole contract: the structure-of-arrays fold is answer-identical
to the retired object-heap fold -- verdicts, witness messages, park and
rebind ordering, refusal text -- at every ``batch_ops`` and on both
kernel paths.  The pieces pinned here are the ones the columnar rewrite
introduced: ``kernels.join_clocks`` (batched CC clock join),
``kernels.ParkQueue`` (columnar park multimap), checkpoint format v6
with v4/v5 backfill, and the ``--gc-tune`` collector experiment.
"""

import gc
import json
import os
import pickle
import subprocess
import sys
from array import array
from contextlib import contextmanager

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IsolationLevel
from repro.core.compiled import kernels, online
from repro.core.compiled.retire import RetirementPolicy
from repro.cli import main
from repro.histories.formats import save_history
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    generate_random_stream,
    inject_anomaly,
)
from repro.stream import CompiledIncrementalChecker, check_stream_file, load_checkpoint

from helpers import make_legacy_checker_state
from test_resolve_kernel import (
    arrival_raw,
    digest,
    fallback_modules,
    interleaved_raw,
    needs_numpy,
    run_stream,
)
from test_retire import _downgrade_checkpoint_to_v4

LEVELS = list(IsolationLevel)


# -- join_clocks: the batched CC clock join ------------------------------------


@contextmanager
def join_floor(n=0):
    """Make the vectorized clock join run even on tiny inputs."""
    saved = kernels._MIN_JOIN_CELLS
    kernels._MIN_JOIN_CELLS = n
    try:
        yield
    finally:
        kernels._MIN_JOIN_CELLS = saved


@st.composite
def join_inputs(draw):
    stride = draw(st.sampled_from([4, 8, 16]))
    nrows = draw(st.integers(1, 8))
    cells = draw(
        st.lists(
            st.integers(-1, 40), min_size=nrows * stride, max_size=nrows * stride
        )
    )
    base = draw(st.lists(st.integers(-1, 40), min_size=stride, max_size=stride))
    k = draw(st.integers(1, nrows))
    rows = draw(st.lists(st.integers(0, nrows - 1), min_size=k, max_size=k))
    wsids = draw(st.lists(st.integers(0, stride - 1), min_size=k, max_size=k))
    wsidxs = draw(st.lists(st.integers(0, 50), min_size=k, max_size=k))
    return array("q", cells), stride, array("q", base), rows, wsids, wsidxs


class TestJoinClocks:
    """Both implementations compute the identical elementwise maximum."""

    @needs_numpy
    @settings(deadline=None, max_examples=120)
    @given(inputs=join_inputs())
    def test_vectorized_matches_fallback_bit_for_bit(self, inputs):
        hb, stride, sc, rows, wsids, wsidxs = inputs
        want = kernels._join_clocks_fallback(hb, stride, sc, 0, rows, wsids, wsidxs)
        with join_floor(0):
            row, vectorized = kernels.join_clocks(
                hb, stride, sc, 0, rows, wsids, wsidxs
            )
        assert vectorized
        assert list(row) == list(want)

    @settings(deadline=None, max_examples=40)
    @given(inputs=join_inputs())
    def test_inputs_never_mutated(self, inputs):
        hb, stride, sc, rows, wsids, wsidxs = inputs
        hb_before, sc_before = list(hb), list(sc)
        kernels.join_clocks(hb, stride, sc, 0, rows, wsids, wsidxs)
        with join_floor(0):
            kernels.join_clocks(hb, stride, sc, 0, rows, wsids, wsidxs)
        assert list(hb) == hb_before and list(sc) == sc_before

    def test_small_joins_stay_scalar(self):
        # 2 rows x 4 stride = 8 cells, far below _MIN_JOIN_CELLS: the
        # dispatch must keep the interpreted loop (fig9's 8-session shape
        # reports ``fallback`` legitimately -- see the join_kernel stat).
        hb = array("q", [1, -1, 3, -1, 0, 5, -1, -1])
        sc = array("q", [2, 2, -1, -1])
        row, vectorized = kernels.join_clocks(hb, 4, sc, 0, [0, 1], [0, 1], [4, 6])
        assert not vectorized
        assert list(row) == [4, 6, 3, -1]

    @needs_numpy
    def test_large_joins_vectorize_by_default(self):
        stride = 64
        hb = array("q", [-1]) * (64 * stride)
        for j in range(64):
            hb[j * stride + (j % stride)] = j
        sc = array("q", [-1]) * stride
        rows = list(range(64))
        row, vectorized = kernels.join_clocks(
            hb, stride, sc, 0, rows, [j % stride for j in rows], [100] * 64
        )
        assert vectorized
        assert all(v == 100 for v in row)

    def test_no_numpy_forces_fallback_even_above_floor(self):
        saved = kernels._np
        kernels._np = None
        try:
            stride = 64
            hb = array("q", [7]) * (64 * stride)
            sc = array("q", [-1]) * stride
            row, vectorized = kernels.join_clocks(
                hb, stride, sc, 0, list(range(64)), [0], [9]
            )
        finally:
            kernels._np = saved
        assert not vectorized
        assert row[0] == 9 and all(v == 7 for v in row[1:])


class TestParkQueue:
    """The columnar park multimap preserves the scalar queue's ordering."""

    def test_pop_preserves_arrival_order(self):
        pq = kernels.ParkQueue()
        pq.add(5, 10, 0)
        pq.add(5, 12, 3)
        pq.add(5, 11, 1)
        assert list(pq.pop(5)) == [10, 0, 12, 3, 11, 1]
        assert pq.pop(5) is None
        assert not pq

    def test_wids_iterate_in_first_park_order(self):
        pq = kernels.ParkQueue()
        for wid in (9, 2, 7, 2, 9):
            pq.add(wid, wid * 10, 0)
        assert list(pq.wids()) == [9, 2, 7]
        assert len(pq) == 3 and 7 in pq and 3 not in pq

    def test_clean_slot_round_trip(self):
        # slot < 0 encodes a clean-parked read as -(index) - 1.
        pq = kernels.ParkQueue()
        for index in (0, 4, 17):
            pq.add(1, 2, -(index) - 1)
        row = pq.pop(1)
        assert [-(row[p + 1]) - 1 for p in range(0, len(row), 2)] == [0, 4, 17]

    def test_pickles_as_plain_rows(self):
        pq = kernels.ParkQueue()
        pq.add(3, 8, 2)
        pq.add(1, 9, -1)
        clone = pickle.loads(pickle.dumps(pq, protocol=pickle.HIGHEST_PROTOCOL))
        assert {wid: list(row) for wid, row in clone.items()} == {
            3: [8, 2],
            1: [9, -1],
        }
        clone.clear()
        assert len(clone) == 0


# -- cross-version checkpoints -------------------------------------------------


def _rewrite_as_v5(path):
    """Rewrite a current checkpoint as the v5 (object-heap) layout."""
    with open(path, "rb") as handle:
        magic = handle.read(len(online.CHECKPOINT_MAGIC))
        version = handle.read(1)
        payload = pickle.load(handle)
    assert magic == online.CHECKPOINT_MAGIC and version[0] == online.CHECKPOINT_VERSION
    # v5 had retirement but predates the columns: pickle the object heap.
    make_legacy_checker_state(payload["checker"])
    with open(path, "wb") as handle:
        handle.write(online.CHECKPOINT_MAGIC)
        handle.write(bytes([5]))
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


class TestCrossVersionCheckpoints:
    """v4 and v5 pickles resume through the columnar backfill, answer-identical."""

    def _history(self, txns=300, seed=29):
        return generate_random_history(
            RandomHistoryConfig(
                num_sessions=4,
                num_transactions=txns,
                num_keys=12,
                min_ops_per_txn=1,
                max_ops_per_txn=6,
                read_fraction=0.5,
                abort_probability=0.05,
                mode="random_reads",
                seed=seed,
            )
        )

    def test_saved_checkpoints_are_v6(self, tmp_path):
        checker = CompiledIncrementalChecker(num_sessions=2)
        checker.append_raw(0, "t0", True, [(True, "x", 1)])
        path = tmp_path / "state.awd"
        checker.save_checkpoint(str(path))
        blob = path.read_bytes()
        assert blob.startswith(online.CHECKPOINT_MAGIC)
        assert blob[len(online.CHECKPOINT_MAGIC)] == online.CHECKPOINT_VERSION == 6

    @pytest.mark.parametrize("batch_ops", [1, 64])
    def test_v5_checkpoint_resumes_byte_identical(self, tmp_path, batch_ops):
        history = self._history()
        records = interleaved_raw(history, 7)
        want, _ = run_stream(records, history.num_sessions, batch_ops)
        half = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        half.extend_raw(iter(records[:150]), batch_ops=batch_ops)
        path = tmp_path / "state.awd"
        half.save_checkpoint(str(path))
        _rewrite_as_v5(str(path))

        resumed = load_checkpoint(str(path))
        assert "_txns" not in resumed.__dict__, "backfill must rebuild the columns"
        assert isinstance(resumed._pending, kernels.ParkQueue)
        resumed.extend_raw(iter(records[150:]), batch_ops=batch_ops)
        assert digest(resumed.finalize()) == want

    def test_v4_checkpoint_resumes_byte_identical(self, tmp_path):
        history = self._history(seed=31)
        records = interleaved_raw(history, 3)
        want, _ = run_stream(records, history.num_sessions, 64)
        half = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        half.extend_raw(iter(records[:150]), batch_ops=64)
        path = tmp_path / "state.awd"
        half.save_checkpoint(str(path))
        _downgrade_checkpoint_to_v4(str(path))

        resumed = load_checkpoint(str(path))
        assert "_txns" not in resumed.__dict__
        resumed.extend_raw(iter(records[150:]), batch_ops=64)
        assert digest(resumed.finalize()) == want

    def test_v5_resume_straddles_a_compaction(self, tmp_path):
        # The checkpoint is taken after real evictions, rewritten to the
        # object-heap layout, and the resume continues retiring over the
        # rebuilt columns -- the hardest backfill path (txns_base > 0).
        # A causally ordered serializable stream, so the fold fully drains
        # between batches and the retirement guard can actually evict (a
        # random interleave parks readers ahead of their writers, which
        # stalls the guard by design).
        history, order = generate_random_stream(
            RandomHistoryConfig(
                num_sessions=4,
                num_transactions=800,
                num_keys=40,
                abort_probability=0.02,
                seed=17,
            )
        )
        records = arrival_raw(history, order)
        want, _ = run_stream(records, history.num_sessions, 64)
        policy = RetirementPolicy(lag=192, every=16, segment_dir=str(tmp_path / "segs"))
        half = CompiledIncrementalChecker(
            num_sessions=history.num_sessions, retire=policy
        )
        half.extend_raw(iter(records[:500]), batch_ops=64)
        assert half._txns_base > 0, "checkpoint must straddle real evictions"
        path = tmp_path / "state.awd"
        half.save_checkpoint(str(path))
        _rewrite_as_v5(str(path))

        resumed = load_checkpoint(str(path))
        assert resumed._txns_base > 0
        resumed.enable_retirement(policy)
        resumed.extend_raw(iter(records[500:]), batch_ops=64)
        assert digest(resumed.finalize()) == want

    @pytest.mark.parametrize("batch_ops", [1, 64, 4096])
    def test_fallback_path_answers_identical(self, batch_ops):
        # The kernel-path half of the contract: the columnar fold with
        # every numpy kernel disabled matches the vectorized fold exactly.
        history = inject_anomaly(self._history(seed=41), INJECTABLE_ANOMALIES[0])
        records = interleaved_raw(history, 11)
        want, _ = run_stream(records, history.num_sessions, batch_ops)
        got, _ = run_stream(records, history.num_sessions, batch_ops, fallback=True)
        assert got == want


# -- AWDIT_NO_NUMPY subprocess parity ------------------------------------------


@needs_numpy
class TestNoNumpySubprocessColumnar:
    """join_clocks and the park-heavy fold are answer-identical without numpy."""

    _SCRIPT = (
        "import json, sys\n"
        "from array import array\n"
        "from repro.core import IsolationLevel\n"
        "from repro.core.compiled import kernels\n"
        "from repro.stream import check_stream_file\n"
        "stride = 64\n"
        "hb = array('q', ((j * s * 2654435761) % 97 - 1\n"
        "                 for j in range(64) for s in range(stride)))\n"
        "sc = array('q', ((s * 40503) % 89 - 1 for s in range(stride)))\n"
        "rows = list(range(0, 64, 1))\n"
        "wsids = [j % stride for j in rows]\n"
        "wsidxs = [(j * 7919) % 101 for j in rows]\n"
        "row, vectorized = kernels.join_clocks(hb, stride, sc, 0, rows,\n"
        "                                      wsids, wsidxs)\n"
        "out = {'join': list(row), 'vectorized': vectorized, 'stream': []}\n"
        "for level in IsolationLevel:\n"
        "    r = check_stream_file(sys.argv[1], level, fmt='plume',\n"
        "                          engine='compiled', batch_ops=1)\n"
        "    out['stream'].append([level.name, r.is_consistent,\n"
        "                          [v.message for v in r.violations]])\n"
        "print(json.dumps(out))\n"
    )

    def _run_subprocess(self, path, no_numpy):
        env = dict(os.environ)
        if no_numpy:
            env["AWDIT_NO_NUMPY"] = "1"
        else:
            env.pop("AWDIT_NO_NUMPY", None)
        proc = subprocess.run(
            [sys.executable, "-c", self._SCRIPT, path],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout)

    def test_join_and_park_parity(self, tmp_path):
        # batch_ops=1 maximizes cross-batch parking: every read of a
        # not-yet-arrived writer goes through the columnar ParkQueue.
        history = inject_anomaly(
            generate_random_history(
                RandomHistoryConfig(
                    num_sessions=4,
                    num_transactions=200,
                    num_keys=8,
                    min_ops_per_txn=2,
                    max_ops_per_txn=6,
                    read_fraction=0.6,
                    mode="random_reads",
                    seed=23,
                )
            ),
            INJECTABLE_ANOMALIES[0],
        )
        path = tmp_path / "parity.plume"
        save_history(history, str(path), fmt="plume")
        with_numpy = self._run_subprocess(str(path), no_numpy=False)
        without = self._run_subprocess(str(path), no_numpy=True)
        assert with_numpy["join"] == without["join"]
        assert with_numpy["vectorized"] is True
        assert without["vectorized"] is False
        assert with_numpy["stream"] == without["stream"]


# -- batch_ops validation ------------------------------------------------------


class TestBatchOpsValidation:
    """Nonsensical batch sizes are rejected up front, not silently folded."""

    @pytest.fixture()
    def history_path(self, tmp_path):
        path = tmp_path / "h.plume"
        save_history(
            generate_random_history(
                RandomHistoryConfig(num_sessions=2, num_transactions=20, seed=1)
            ),
            str(path),
            fmt="plume",
        )
        return str(path)

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_cli_rejects_bad_batch_ops(self, history_path, capsys, value):
        assert main(["check", history_path, "--stream", "--batch-ops", value]) == 2
        err = capsys.readouterr().err
        assert "awdit: error:" in err
        assert f"--batch-ops must be >= 1, got {value}" in err

    def test_cli_gc_tune_requires_stream(self, history_path, capsys):
        assert main(["check", history_path, "--gc-tune"]) == 2
        err = capsys.readouterr().err
        assert "awdit: error:" in err and "--gc-tune" in err and "--stream" in err

    @pytest.mark.parametrize("value", [0, -1])
    def test_extend_raw_rejects_bad_batch_ops(self, value):
        checker = CompiledIncrementalChecker(num_sessions=1)
        with pytest.raises(ValueError, match=f"batch_ops must be >= 1, got {value}"):
            checker.extend_raw(iter([]), batch_ops=value)

    @pytest.mark.parametrize("engine", ["compiled", "object"])
    def test_check_stream_file_rejects_bad_batch_ops(self, history_path, engine):
        with pytest.raises(ValueError, match="batch_ops must be >= 1, got 0"):
            check_stream_file(
                history_path,
                IsolationLevel.CAUSAL_CONSISTENCY,
                fmt="plume",
                engine=engine,
                batch_ops=0,
            )


# -- --gc-tune -----------------------------------------------------------------


class TestGcTune:
    """The collector experiment never changes answers or leaks GC state."""

    def _history_path(self, tmp_path):
        path = tmp_path / "h.plume"
        save_history(
            inject_anomaly(
                generate_random_history(
                    RandomHistoryConfig(
                        num_sessions=3,
                        num_transactions=120,
                        num_keys=8,
                        read_fraction=0.5,
                        mode="random_reads",
                        seed=13,
                    )
                ),
                INJECTABLE_ANOMALIES[0],
            ),
            str(path),
            fmt="plume",
        )
        return str(path)

    def test_same_answers_and_collector_fully_restored(self, tmp_path):
        path = self._history_path(tmp_path)
        thresholds = gc.get_threshold()
        enabled = gc.isenabled()
        frozen = gc.get_freeze_count()
        for level in LEVELS:
            plain = check_stream_file(path, level, fmt="plume", engine="compiled")
            tuned = check_stream_file(
                path, level, fmt="plume", engine="compiled", gc_tune=True
            )
            assert tuned.is_consistent == plain.is_consistent
            assert [v.message for v in tuned.violations] == [
                v.message for v in plain.violations
            ]
        assert gc.get_threshold() == thresholds
        assert gc.isenabled() == enabled
        assert gc.get_freeze_count() == frozen

    def test_cli_gc_tune_runs_and_profiles(self, tmp_path, capsys):
        path = self._history_path(tmp_path)
        code = main(["check", path, "-i", "cc", "--stream", "--gc-tune", "--profile"])
        assert code == 1  # the injected anomaly is a real violation
        err = capsys.readouterr().err  # --profile reports on stderr
        assert "fold_dispatch" in err
        assert "parse_gc_collections" in err and "fold_gc_collections" in err
