"""Tests for the compiled-history core (interned array IR + checkers).

The central contract: the compiled engine is *byte-identical* to the object
engine -- same verdicts, same violation kinds, same witness renderings, same
inferred-edge counts -- at all three isolation levels, on arbitrary histories
including injected anomalies.  Hypothesis enforces it below.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IsolationLevel, check, check_all_levels
from repro.core.compiled import (
    CompiledHistory,
    CompiledHistoryBuilder,
    Intern,
    check_compiled,
    compile_history,
)
from repro.core.model import History, Transaction, read, write
from repro.histories.formats import load_compiled, load_history, save_history
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    inject_anomaly,
)

from helpers import PAPER_VERDICTS, all_paper_histories

LEVELS = list(IsolationLevel)

history_configs = st.builds(
    RandomHistoryConfig,
    num_sessions=st.integers(1, 5),
    num_transactions=st.integers(0, 30),
    num_keys=st.integers(1, 6),
    min_ops_per_txn=st.just(1),
    max_ops_per_txn=st.integers(1, 6),
    read_fraction=st.floats(0.2, 0.8),
    abort_probability=st.sampled_from([0.0, 0.15]),
    mode=st.sampled_from(["serializable", "random_reads"]),
    seed=st.integers(0, 10_000),
)


def assert_engines_identical(history, level):
    """Object and compiled engines agree on everything user-visible."""
    obj = check(history, level, engine="object")
    comp = check(history, level, engine="compiled")
    assert comp.is_consistent == obj.is_consistent, level
    assert [v.kind for v in comp.violations] == [v.kind for v in obj.violations], level
    assert [v.describe() for v in comp.violations] == [
        v.describe() for v in obj.violations
    ], level
    assert comp.checker == obj.checker, level
    assert comp.stats.get("inferred_edges") == obj.stats.get("inferred_edges"), level
    assert comp.stats.get("co_edges") == obj.stats.get("co_edges"), level
    return obj, comp


class TestIntern:
    def test_dense_ids_and_roundtrip(self):
        table = Intern()
        assert table.intern("x") == 0
        assert table.intern("y") == 1
        assert table.intern("x") == 0
        assert table.values == ["x", "y"]
        assert table[1] == "y"
        assert len(table) == 2
        assert table.get("z") is None

    def test_memory_estimate_positive(self):
        table = Intern()
        table.intern("key")
        assert table.memory_bytes() > 0


class TestCompileFromHistory:
    def test_arrays_mirror_the_object_model(self):
        history = all_paper_histories()["fig_1a"]
        ch = compile_history(history)
        assert ch.num_operations == history.num_operations
        assert ch.num_transactions == history.num_transactions
        assert ch.num_sessions == history.num_sessions
        assert ch.num_keys == len(history.keys)
        assert ch.committed == history.committed
        assert [ch.name_of(t) for t in range(ch.num_transactions)] == [
            txn.name for txn in history.transactions
        ]
        # Flat layout: transaction t owns ops txn_start[t]:txn_start[t+1].
        for tid, txn in enumerate(history.transactions):
            lo, hi = ch.txn_start[tid], ch.txn_start[tid + 1]
            assert hi - lo == len(txn.operations)
            for offset, op in enumerate(txn.operations):
                i = lo + offset
                assert bool(ch.op_kind[i]) == op.is_write
                assert ch.key_table.values[ch.op_key[i]] == op.key
                assert ch.value_table.values[ch.op_value[i]] == op.value
                assert ch.op_repr(i) == repr(op)

    def test_wr_is_taken_from_the_history_not_reinferred(self):
        t1 = Transaction([write("x", 1)], label="w")
        t2 = Transaction([read("x", 1)], label="r")
        history = History.from_sessions([[t1], [t2]], wr={})  # explicitly empty
        ch = compile_history(history)
        assert all(w == -1 for w in ch.op_wr)
        # An empty wr makes the read thin-air at every level.
        assert not check_compiled(ch, IsolationLevel.READ_COMMITTED).is_consistent

    def test_history_compile_convenience(self):
        ch = all_paper_histories()["fig_4d"].compile()
        assert isinstance(ch, CompiledHistory)

    def test_memory_footprint_reports_components(self):
        ch = compile_history(all_paper_histories()["fig_1b"])
        footprint = ch.memory_footprint()
        assert set(footprint) == {"arrays_bytes", "intern_tables_bytes", "total_bytes"}
        assert (
            footprint["total_bytes"]
            == footprint["arrays_bytes"] + footprint["intern_tables_bytes"]
        )
        assert footprint["total_bytes"] > 0


class TestPaperHistoryParity:
    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    def test_engines_identical_on_paper_histories(self, name):
        history = all_paper_histories()[name]
        expected = dict(zip(LEVELS, PAPER_VERDICTS[name]))
        for level in LEVELS:
            _obj, comp = assert_engines_identical(history, level)
            assert comp.is_consistent == expected[level]

    def test_check_accepts_a_compiled_history(self):
        history = all_paper_histories()["fig_4a"]
        ch = compile_history(history)
        via_compiled = check(ch, IsolationLevel.READ_COMMITTED)
        via_history = check(history, IsolationLevel.READ_COMMITTED)
        assert [v.describe() for v in via_compiled.violations] == [
            v.describe() for v in via_history.violations
        ]

    def test_check_all_levels_compiled_engine(self):
        history = all_paper_histories()["fig_1b"]
        compiled = check_all_levels(history)
        objects = check_all_levels(history, engine="object")
        for level in LEVELS:
            assert compiled[level].is_consistent == objects[level].is_consistent
            assert [v.describe() for v in compiled[level].violations] == [
                v.describe() for v in objects[level].violations
            ]

    def test_engine_validation(self):
        history = all_paper_histories()["fig_4d"]
        with pytest.raises(ValueError):
            check(history, IsolationLevel.READ_COMMITTED, engine="warp")
        with pytest.raises(ValueError):
            check(compile_history(history), engine="object")


class TestBuilder:
    def test_builder_matches_compile_of_equivalent_history(self):
        history = all_paper_histories()["fig_1b"]
        builder = CompiledHistoryBuilder()
        for sid, session in enumerate(history.sessions):
            for tid in session:
                txn = history.transactions[tid]
                builder.add_transaction(
                    sid,
                    txn.label,
                    txn.committed,
                    [(op.is_write, op.key, op.value) for op in txn.operations],
                )
        ch = builder.finalize()
        direct = compile_history(history)
        assert list(ch.op_key) == list(direct.op_key)
        assert list(ch.op_wr) == list(direct.op_wr)
        assert list(ch.txn_start) == list(direct.txn_start)
        assert ch.sessions == direct.sessions
        for level in LEVELS:
            a = check_compiled(ch, level)
            b = check_compiled(direct, level)
            assert [v.describe() for v in a.violations] == [
                v.describe() for v in b.violations
            ]

    def test_out_of_order_sessions_renumber_like_from_sessions(self):
        builder = CompiledHistoryBuilder()
        builder.add_transaction(1, "b", True, [(True, "x", 2)])
        builder.add_transaction(0, "a", True, [(True, "x", 1)])
        ch = builder.finalize(sort_sessions=True)
        # Session 0 comes first after sorting, so its transaction gets tid 0.
        assert ch.labels == {0: "a", 1: "b"}
        assert ch.sessions == [[0], [1]]

    def test_fill_gaps_materializes_empty_sessions(self):
        builder = CompiledHistoryBuilder()
        builder.add_transaction(2, None, True, [(True, "x", 1)])
        ch = builder.finalize(sort_sessions=True, fill_gaps=True)
        assert ch.num_sessions == 3
        assert ch.sessions == [[], [], [0]]


class TestLoadCompiled:
    @pytest.mark.parametrize(
        "fmt,ext",
        [("native", ".json"), ("plume", ".plume"), ("dbcop", ".dbcop"), ("cobra", ".cobra")],
    )
    def test_load_compiled_matches_load_then_compile(self, tmp_path, fmt, ext):
        history = generate_random_history(
            RandomHistoryConfig(
                num_sessions=4, num_transactions=30, num_keys=5, seed=7,
                abort_probability=0.1, mode="random_reads",
            )
        )
        path = tmp_path / f"h{ext}"
        save_history(history, str(path), fmt=fmt)
        direct = load_compiled(str(path), fmt=fmt)
        via_object = compile_history(load_history(str(path), fmt=fmt))
        for level in LEVELS:
            a = check_compiled(direct, level)
            b = check_compiled(via_object, level)
            assert a.is_consistent == b.is_consistent
            assert [v.describe() for v in a.violations] == [
                v.describe() for v in b.violations
            ]


class TestHypothesisParity:
    """The acceptance property: engines agree on verdict, kinds, witnesses."""

    @settings(
        max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(config=history_configs, level=st.sampled_from(LEVELS))
    def test_compiled_matches_object_on_random_histories(self, config, level):
        history = generate_random_history(config)
        assert_engines_identical(history, level)

    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        config=history_configs,
        kind=st.sampled_from(INJECTABLE_ANOMALIES),
        level=st.sampled_from(LEVELS),
    )
    def test_compiled_matches_object_with_injected_anomalies(self, config, kind, level):
        history = inject_anomaly(generate_random_history(config), kind)
        assert_engines_identical(history, level)

    @settings(
        max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(config=history_configs)
    def test_builder_path_matches_object_path_via_plume(self, config, tmp_path_factory):
        """File -> builder -> compiled check == file -> History -> object check."""
        history = generate_random_history(config)
        if history.num_transactions == 0:
            return
        path = tmp_path_factory.mktemp("compiled") / "h.plume"
        save_history(history, str(path), fmt="plume")
        ch = load_compiled(str(path), fmt="plume")
        loaded = load_history(str(path), fmt="plume")
        for level in LEVELS:
            a = check_compiled(ch, level)
            b = check(loaded, level, engine="object")
            assert a.is_consistent == b.is_consistent, level
            assert [v.describe() for v in a.violations] == [
                v.describe() for v in b.violations
            ], level
