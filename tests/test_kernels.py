"""Bit-identity tests for the saturation kernels (repro.core.compiled.kernels).

The kernels module is the single home of the CC/RC/RA saturation loops, each
existing twice -- numpy-vectorized and pure-Python fallback, selected like
``csr.freeze_packed``.  These tests pin the contract every consumer (batch
checkers, shard workers, online fold) relies on:

* the two implementations emit *byte-identical* packed co logs and key rows,
  in the identical order, on arbitrary histories including injected
  anomalies (hypothesis-tested with the size cutoff pinned to 0 so the
  vectorized path runs even on tiny inputs);
* whole-check results (verdicts, violation kinds, witness renderings) never
  depend on which implementation ran;
* the shard workers' injected ``scratch`` pointer state is left pristine by
  both implementations;
* the online fold's deferred probe flush is bit-identical between the
  vectorized and scalar flush paths, for any record interleaving and any
  ``batch_ops``;
* the 32-bit boundaries of the vectorized encodings hold: packed edges are
  unsigned, and the composite writer index spans a full ``2^32`` per bucket
  so a ``bound = -1`` probe cannot collide with the previous bucket
  (mirroring ``tests/test_csr.py``'s packed-edge boundary coverage).
"""

import os
import random
import subprocess
import sys
from array import array

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IsolationLevel, check
from repro.core.compiled import compile_history
from repro.core.compiled import kernels
from repro.core.compiled import online
from repro.core.compiled.checkers import (
    _relation_from_compiled,
    check_read_consistency_compiled,
    compute_happens_before_compiled,
)
from repro.core.compiled.kernels import (
    _writers_by_key_compiled,
    saturate_cc_compiled,
    saturate_ra_compiled,
    saturate_rc_compiled,
)
from repro.graph.digraph import EDGE_SHIFT
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    inject_anomaly,
)

LEVELS = list(IsolationLevel)

history_configs = st.builds(
    RandomHistoryConfig,
    num_sessions=st.integers(1, 5),
    num_transactions=st.integers(0, 30),
    num_keys=st.integers(1, 6),
    min_ops_per_txn=st.just(1),
    max_ops_per_txn=st.integers(1, 6),
    read_fraction=st.floats(0.2, 0.8),
    abort_probability=st.sampled_from([0.0, 0.15]),
    mode=st.sampled_from(["serializable", "random_reads"]),
    seed=st.integers(0, 10_000),
)

needs_numpy = pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="vectorized kernels need numpy"
)


@pytest.fixture
def force_vectorized(monkeypatch):
    """Make the vectorized kernels run even on tiny inputs."""
    monkeypatch.setattr(kernels, "_MIN_VECTOR_READS", 0)


def _fallback(monkeypatch_target=kernels):
    class _Ctx:
        def __enter__(self):
            self.saved = monkeypatch_target._np
            monkeypatch_target._np = None

        def __exit__(self, *exc):
            monkeypatch_target._np = self.saved

    return _Ctx()


def _saturation_logs(history, level):
    """Run one saturation kernel; return its raw (co_log, co_keys) bytes."""
    ch = compile_history(history)
    relation = _relation_from_compiled(ch)
    report = check_read_consistency_compiled(ch)
    if level is IsolationLevel.READ_COMMITTED:
        impl = saturate_rc_compiled(ch, relation, report.bad_ops)
    elif level is IsolationLevel.READ_ATOMIC:
        impl = saturate_ra_compiled(ch, relation, report.bad_ops)
    else:
        hb, _ = compute_happens_before_compiled(ch, report.bad_ops)
        if hb is None:
            return None, None, "cyclic"
        impl = saturate_cc_compiled(ch, relation, hb, report.bad_ops)
    return relation._co_log.tobytes(), relation._co_keys.tobytes(), impl


@needs_numpy
class TestKernelBitIdentity:
    """Vectorized and fallback kernels emit byte-identical edge logs."""

    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(config=history_configs, level=st.sampled_from(LEVELS))
    def test_logs_bit_identical(self, config, level, force_vectorized):
        history = generate_random_history(config)
        vec_log, vec_keys, vec_impl = _saturation_logs(history, level)
        with _fallback():
            fb_log, fb_keys, fb_impl = _saturation_logs(history, level)
        assert fb_impl in ("fallback", "cyclic")
        if vec_impl != "cyclic":
            # The vectorized path may still decline (e.g. empty histories
            # gather nothing); identity must hold regardless.
            assert vec_log == fb_log
            assert vec_keys == fb_keys

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(
        config=history_configs,
        level=st.sampled_from(LEVELS),
        anomaly=st.sampled_from(list(INJECTABLE_ANOMALIES)),
        anomaly_seed=st.integers(0, 1000),
    )
    def test_witness_identity_under_anomalies(
        self, config, level, anomaly, anomaly_seed, force_vectorized
    ):
        history = generate_random_history(config)
        try:
            history = inject_anomaly(history, anomaly, rng=random.Random(anomaly_seed))
        except ValueError:
            # Some anomalies need a minimum history shape.
            pass
        vec = check(history, level, engine="compiled")
        with _fallback():
            fb = check(history, level, engine="compiled")
        assert vec.is_consistent == fb.is_consistent
        assert [v.kind for v in vec.violations] == [v.kind for v in fb.violations]
        assert [v.describe() for v in vec.violations] == [
            v.describe() for v in fb.violations
        ]
        assert vec.stats.get("inferred_edges") == fb.stats.get("inferred_edges")

    def test_impl_is_reported(self, force_vectorized):
        config = RandomHistoryConfig(
            num_sessions=3,
            num_transactions=40,
            num_keys=4,
            min_ops_per_txn=1,
            max_ops_per_txn=4,
            read_fraction=0.5,
            seed=7,
        )
        history = generate_random_history(config)
        _, _, impl = _saturation_logs(history, IsolationLevel.CAUSAL_CONSISTENCY)
        assert impl == "vectorized"
        result = check(history, IsolationLevel.CAUSAL_CONSISTENCY, engine="compiled")
        assert result.stats["saturation_kernel"] == "vectorized"
        with _fallback():
            result = check(
                history, IsolationLevel.CAUSAL_CONSISTENCY, engine="compiled"
            )
        assert result.stats["saturation_kernel"] == "fallback"


class TestScratchContract:
    """The shard workers' injected CC pointer scratch stays pristine."""

    def _history(self):
        config = RandomHistoryConfig(
            num_sessions=3,
            num_transactions=60,
            num_keys=5,
            min_ops_per_txn=1,
            max_ops_per_txn=4,
            read_fraction=0.5,
            seed=11,
        )
        return generate_random_history(config)

    def _run_with_scratch(self, force_min=None):
        history = self._history()
        ch = compile_history(history)
        relation = _relation_from_compiled(ch)
        report = check_read_consistency_compiled(ch)
        hb, _ = compute_happens_before_compiled(ch, report.bad_ops)
        assert hb is not None
        writers = _writers_by_key_compiled(ch)
        num_buckets = writers[1]
        scratch = (
            array("q", bytes(8 * num_buckets)),
            array("q", [-1]) * num_buckets,
            [],
        )
        for sid in range(len(ch.sessions)):
            saturate_cc_compiled(
                ch,
                relation,
                hb,
                report.bad_ops,
                sessions=(sid,),
                writers_by_key=writers,
                scratch=scratch,
            )
        ptrs, t2s, touched = scratch
        assert not any(ptrs), "pointer row not reset"
        assert all(value == -1 for value in t2s), "t2 row not reset"
        assert touched == []
        return relation._co_log.tobytes(), relation._co_keys.tobytes()

    def test_fallback_leaves_scratch_pristine(self):
        with _fallback():
            self._run_with_scratch()

    @needs_numpy
    def test_vectorized_leaves_scratch_pristine(self, force_vectorized):
        vec = self._run_with_scratch()
        with _fallback():
            fb = self._run_with_scratch()
        # Session-restricted vectorized runs also match the fallback's log.
        assert vec == fb


@needs_numpy
class TestOnlineFlushBitIdentity:
    """The online fold's vectorized probe flush matches the scalar flush."""

    def _records(self, history, order_seed):
        rng = random.Random(order_seed)
        positions = [0] * len(history.sessions)
        while True:
            live = [
                i
                for i, session in enumerate(history.sessions)
                if positions[i] < len(session)
            ]
            if not live:
                return
            i = rng.choice(live)
            tid = history.sessions[i][positions[i]]
            positions[i] += 1
            txn = history.transactions[tid]
            yield (
                f"s{i}",
                (
                    txn.label,
                    txn.committed,
                    [(op.is_write, op.key, op.value) for op in txn.operations],
                ),
            )

    def _run(self, history, batch_ops, order_seed, use_numpy, monkeypatch):
        if use_numpy:
            monkeypatch.setattr(kernels, "_MIN_VECTOR_READS", 0)
        else:
            monkeypatch.setattr(online, "_np", None)
        checker = online.CompiledIncrementalChecker(levels=list(online.ALL_LEVELS))
        checker.extend_raw(self._records(history, order_seed), batch_ops=batch_ops)
        log = dict(checker._cc_log)
        results = checker.finalize()
        rendered = {
            level.name: (
                [(v.kind.name, v.describe()) for v in res.violations],
                res.checker,
            )
            for level, res in results.items()
        }
        return log, rendered

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow, HealthCheck.function_scoped_fixture],
    )
    @given(
        config=history_configs,
        batch_ops=st.sampled_from([1, 7, 4096]),
        order_seed=st.integers(0, 1000),
    )
    def test_cc_log_and_results_identical(
        self, config, batch_ops, order_seed, monkeypatch
    ):
        history = generate_random_history(config)
        with monkeypatch.context() as patch:
            vec_log, vec_out = self._run(history, batch_ops, order_seed, True, patch)
        with monkeypatch.context() as patch:
            fb_log, fb_out = self._run(history, batch_ops, order_seed, False, patch)
        assert vec_log == fb_log
        assert vec_out == fb_out


class TestCompositeProbeBoundary:
    """The vectorized CC probe at the 32-bit session-index boundary.

    The writer index is probed through ``bucket * _SIDX_SPAN + bound``.
    The span must be a full ``2^32``: session indices reach ``2^31 - 1``
    (the transaction-count guard), and a probe carrying the "empty clock"
    bound of ``-1`` sits at ``bucket * span - 1`` -- with a ``2^31`` span
    that value would land *inside* the previous bucket's range and
    ``searchsorted`` would report a phantom writer.
    """

    def test_span_covers_every_session_index(self):
        assert kernels._SIDX_SPAN == 1 << 32
        # Largest representable sidx stays strictly below the span, so the
        # bound=-1 probe of bucket b sorts above every bucket b-1 entry.
        assert (2**31 - 1) < kernels._SIDX_SPAN - 1

    @needs_numpy
    def test_probe_matches_bisect_reference_at_boundary(self):
        np = kernels._np
        span = kernels._SIDX_SPAN
        # Bucket 0 holds writers at the very top of the sidx range; bucket 1
        # holds small ones.  (bucket, sidx, tid) rows, bucket-major.
        rows = [
            (0, 2**31 - 2, 10),
            (0, 2**31 - 1, 11),
            (1, 0, 20),
            (1, 5, 21),
            (2, 2**31 - 1, 30),
        ]
        comp = np.asarray([b * span + s for b, s, _ in rows], dtype=np.int64)
        tids = np.asarray([t for _, _, t in rows], dtype=np.int64)
        starts = {0: 0, 1: 2, 2: 4}
        counts = {0: 2, 1: 2, 2: 1}

        def reference(bucket, bound):
            sidxs = [s for b, s, _ in rows if b == bucket]
            hits = [t for b, s, t in rows if b == bucket and s <= bound]
            return hits[-1] if hits else None

        def kernel(bucket, bound):
            # Exactly the arithmetic of _saturate_cc_vectorized's pass 4.
            where = int(np.searchsorted(comp, bucket * span + bound, side="right"))
            if where <= starts[bucket]:
                return None
            return int(tids[where - 1])

        for bucket in (0, 1, 2):
            for bound in (-1, 0, 1, 5, 2**31 - 2, 2**31 - 1):
                assert kernel(bucket, bound) == reference(bucket, bound), (
                    bucket,
                    bound,
                )

    @needs_numpy
    def test_packed_edges_are_unsigned_at_boundary(self):
        np = kernels._np
        # Pass 5 packs (t2 << EDGE_SHIFT) | t1 in uint64; a tid with the
        # top bit of its 32-bit half set must round-trip unflipped.
        t2 = np.asarray([2**31 - 1], dtype=np.int64)
        t1 = np.asarray([3], dtype=np.int64)
        packed = (t2.astype(np.uint64) << np.uint64(EDGE_SHIFT)) | t1.astype(
            np.uint64
        )
        log = array("Q")
        log.frombytes(packed.tobytes())
        assert log[0] == ((2**31 - 1) << EDGE_SHIFT) | 3


class TestEnvFlag:
    """AWDIT_NO_NUMPY forces the fallback kernels process-wide."""

    def test_flag_disables_numpy_probes(self):
        script = (
            "from repro.graph import csr\n"
            "from repro.core.compiled import kernels\n"
            "from repro.core.compiled import online\n"
            "assert csr._np is None and not csr.HAVE_NUMPY\n"
            "assert kernels._np is None and not kernels.HAVE_NUMPY\n"
            "assert kernels.kernel_impl() == 'fallback'\n"
            "assert online._np is None\n"
            "print('ok')\n"
        )
        env = dict(os.environ)
        env["AWDIT_NO_NUMPY"] = "1"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "ok"
