"""Bit-identity tests for the batched read-resolution kernel (PR 9).

``kernels.resolve_reads`` replaced the scalar per-read probe loop at the
heart of ``CompiledIncrementalChecker.append_batch``: reads are packed as
``(kid << 32) | vid`` and answered by one searchsorted over the
:class:`~repro.core.compiled.kernels.WritesIndex` flat registry, then
bulk-partitioned into fast path / slow path (scalar ``_classify``) / park
queue.  These tests pin the contract every batch size and every consumer
relies on:

* the vectorized kernel and the pure-Python ``_resolve_reads_fallback``
  emit identical :class:`ResolvedBatch` columns -- including the bulk
  registration notes (``nh_*``) -- on arbitrary record interleavings at
  any ``batch_ops`` (hypothesis, with the size cutoff pinned to 0 so the
  vectorized path runs even on tiny batches);
* whole-check verdicts, witness messages and inferred-edge counts never
  depend on which implementation resolved the reads, including under
  injected anomalies and supersede-driven park/rebind storms;
* the duplicate-write-after-fold refusal fires with a byte-identical
  diagnostic at every ``batch_ops`` on both implementations (error
  *timing* may move to the batch boundary; the message may not change);
* ``AWDIT_NO_NUMPY=1`` -- the supported process-wide switch -- yields the
  same answers from a real subprocess while reporting
  ``classify_kernel: fallback``;
* retirement compaction invalidates the flat registry mid-stream and the
  next batch rebuilds it from the live dicts without changing a verdict;
* checkpoints never serialize the registry (v5 files stay loadable both
  ways) and pre-kernel pickles resume through the backfill paths;
* the shard workers' import surface re-exports the kernel.
"""

import json
import os
import pickle
import random
import subprocess
import sys
from contextlib import contextmanager
from itertools import permutations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IsolationLevel, check
from repro.core.compiled import kernels, online
from repro.core.compiled.retire import RetirementPolicy
from repro.core.exceptions import HistoryFormatError
from repro.core.model import History, Transaction, read, write
from repro.histories.formats import save_history
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    generate_random_stream,
    inject_anomaly,
)
from helpers import make_legacy_checker_state
from repro.stream import CompiledIncrementalChecker, check_stream_file, load_checkpoint

LEVELS = list(IsolationLevel)

BATCH_SIZES = (1, 7, 4096)

needs_numpy = pytest.mark.skipif(
    not kernels.HAVE_NUMPY, reason="vectorized resolve kernel needs numpy"
)

history_configs = st.builds(
    RandomHistoryConfig,
    num_sessions=st.integers(1, 5),
    num_transactions=st.integers(0, 30),
    num_keys=st.integers(1, 6),
    min_ops_per_txn=st.just(1),
    max_ops_per_txn=st.integers(1, 6),
    read_fraction=st.floats(0.2, 0.8),
    abort_probability=st.sampled_from([0.0, 0.15]),
    mode=st.sampled_from(["serializable", "random_reads"]),
    seed=st.integers(0, 10_000),
)


def raw_of(txn):
    return (
        txn.label,
        txn.committed,
        [(op.is_write, op.key, op.value) for op in txn.operations],
    )


def interleaved_raw(history, seed):
    """Raw records in a random arrival order respecting session order."""
    rng = random.Random(seed)
    positions = [0] * history.num_sessions
    live = [sid for sid in range(history.num_sessions) if history.sessions[sid]]
    records = []
    while live:
        sid = rng.choice(live)
        txn = history.transactions[history.sessions[sid][positions[sid]]]
        positions[sid] += 1
        if positions[sid] == len(history.sessions[sid]):
            live.remove(sid)
        records.append((sid, raw_of(txn)))
    return records


def arrival_raw(history, order):
    """Raw records of ``history`` in the generator's arrival ``order``."""
    sid_of = [0] * len(history.transactions)
    for sid, session in enumerate(history.sessions):
        for tid in session:
            sid_of[tid] = sid
    return [(sid_of[tid], raw_of(history.transactions[tid])) for tid in order]


@contextmanager
def vector_floor(n=0):
    """Make the vectorized kernel run even on tiny batches."""
    saved = kernels._MIN_VECTOR_READS
    kernels._MIN_VECTOR_READS = n
    try:
        yield
    finally:
        kernels._MIN_VECTOR_READS = saved


@contextmanager
def fallback_modules():
    """Force the pure-Python path for a whole checker lifetime.

    Both modules must flip together (mirroring ``AWDIT_NO_NUMPY``):
    ``kernels._np`` selects the resolve implementation while
    ``online._np`` gates the probe-index and flush vectorization, and a
    checker built half-numpy would mix array and list state.
    """
    saved = (kernels._np, online._np)
    kernels._np = None
    online._np = None
    try:
        yield
    finally:
        kernels._np, online._np = saved


def digest(results):
    return [
        (
            level.name,
            results[level].is_consistent,
            [v.message for v in results[level].violations],
            results[level].stats.get("inferred_edges"),
        )
        for level in LEVELS
    ]


def run_stream(records, num_sessions, batch_ops, fallback=False, retire=None):
    ctx = fallback_modules() if fallback else vector_floor()
    with ctx:
        checker = CompiledIncrementalChecker(num_sessions=num_sessions, retire=retire)
        checker.extend_raw(iter(records), batch_ops=batch_ops)
        return digest(checker.finalize()), checker


_COLUMNS = tuple(c for c in kernels.ResolvedBatch.__slots__ if c != "kernel")


def _normalize(column):
    # The fallback builds Python lists (bools included); the vectorized
    # kernel hands back array-backed columns.  The fold only relies on
    # the integer values, so compare those.
    return [int(v) for v in column]


@contextmanager
def comparing_resolver(kernels_used):
    """Intercept every resolve call and diff both implementations.

    The fallback runs first on the identical inputs (it never touches the
    index, so order is immaterial); the vectorized result is returned to
    the fold so the stream proceeds on the columns under test.
    """
    real = kernels.resolve_reads

    def compare(index, writes, committed_of, kid_col, vid_col, kinds, txn_end,
                committed_col, tid0):
        reference = kernels._resolve_reads_fallback(
            writes, committed_of, kid_col, vid_col, kinds, txn_end,
            committed_col, tid0,
        )
        res = real(
            index, writes, committed_of, kid_col, vid_col, kinds, txn_end,
            committed_col, tid0,
        )
        kernels_used.append(res.kernel)
        for name in _COLUMNS:
            assert _normalize(getattr(res, name)) == _normalize(
                getattr(reference, name)
            ), name
        return res

    kernels.resolve_reads = compare
    try:
        yield
    finally:
        kernels.resolve_reads = real


@needs_numpy
class TestResolvedBatchColumns:
    """Column-for-column identity of the two implementations."""

    @settings(
        deadline=None,
        max_examples=40,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        config=history_configs,
        batch_ops=st.sampled_from(BATCH_SIZES),
        order_seed=st.integers(0, 100),
    )
    def test_columns_bit_identical(self, config, batch_ops, order_seed):
        history = generate_random_history(config)
        records = interleaved_raw(history, order_seed)
        used = []
        with vector_floor(), comparing_resolver(used):
            checker = CompiledIncrementalChecker(num_sessions=history.num_sessions)
            checker.extend_raw(iter(records), batch_ops=batch_ops)
            checker.finalize()

    def test_vectorized_path_engages_above_the_floor(self):
        # Without touching _MIN_VECTOR_READS a dense batch must route to
        # the numpy kernel -- and still match the fallback column for
        # column (guards against the dispatch quietly regressing to the
        # scalar path while every identity test forces the floor to 0).
        history = generate_random_history(
            RandomHistoryConfig(
                num_sessions=4,
                num_transactions=400,
                num_keys=8,
                min_ops_per_txn=2,
                max_ops_per_txn=6,
                read_fraction=0.6,
                mode="random_reads",
                seed=3,
            )
        )
        used = []
        with comparing_resolver(used):
            checker = CompiledIncrementalChecker(num_sessions=history.num_sessions)
            checker.extend_raw(iter(interleaved_raw(history, 1)), batch_ops=4096)
            checker.finalize()
        assert "vectorized" in used


@needs_numpy
class TestWholeCheckIdentity:
    """Verdicts and witnesses never depend on the implementation."""

    def _both(self, history, order_seed, batch_ops):
        records = interleaved_raw(history, order_seed)
        vec, _ = run_stream(records, history.num_sessions, batch_ops)
        fb, _ = run_stream(records, history.num_sessions, batch_ops, fallback=True)
        assert vec == fb
        return vec

    @settings(
        deadline=None,
        max_examples=30,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        config=history_configs,
        batch_ops=st.sampled_from(BATCH_SIZES),
        order_seed=st.integers(0, 100),
    )
    def test_random_interleavings(self, config, batch_ops, order_seed):
        self._both(generate_random_history(config), order_seed, batch_ops)

    @pytest.mark.parametrize("kind", INJECTABLE_ANOMALIES, ids=lambda k: k.name)
    def test_injected_anomalies(self, kind):
        base = generate_random_history(
            RandomHistoryConfig(num_sessions=3, num_transactions=20, seed=7)
        )
        history = inject_anomaly(base, kind)
        digests = [self._both(history, 11, batch_ops) for batch_ops in BATCH_SIZES]
        # batch_ops is a buffering knob, not a semantic one.
        assert digests[0] == digests[1] == digests[2]
        # And the streamed verdict agrees with the batch oracle.
        for level, (_, is_consistent, _, _) in zip(LEVELS, digests[0]):
            assert is_consistent == check(history, level).is_consistent, level


class TestParkRebindOrdering:
    """Supersede storms: parked readers rebinding across implementations.

    The histories put duplicate ``(key, value)`` writes in flight while
    readers are parked, so arrival order decides between a clean rebind
    and the duplicate-after-fold refusal.  Whatever the outcome, it must
    be identical across implementation x batch_ops.
    """

    def _outcome(self, records, num_sessions, batch_ops, fallback):
        try:
            result, _ = run_stream(records, num_sessions, batch_ops,
                                   fallback=fallback)
            return ("ok", result)
        except HistoryFormatError as exc:
            return ("refused", str(exc))

    def _matrix(self, history, orders):
        for order in orders:
            records = [(sid, raw_of(history.transactions[history.sessions[sid][0]]))
                       for sid in order]
            outcomes = [
                self._outcome(records, history.num_sessions, batch_ops, fallback)
                for batch_ops in BATCH_SIZES
                for fallback in (False, True)
            ]
            for other in outcomes[1:]:
                assert other == outcomes[0], order

    def test_single_parked_reader(self):
        # The canonical supersede shape: the reader parks on (y, 9), its
        # (x, 5) read first binds the losing duplicate, and the winner's
        # arrival must rebind it -- unless the reader already folded, in
        # which case every configuration must refuse identically.
        loser = Transaction([write("x", 5), write("x", 6)], label="loser")
        reader = Transaction([read("x", 5), read("y", 9)], label="reader")
        winner = Transaction([write("x", 5)], label="winner")
        ywriter = Transaction([write("y", 9)], label="ywriter")
        history = History.from_sessions([[loser], [reader], [winner], [ywriter]])
        self._matrix(history, permutations(range(4)))

    def test_multiple_parked_readers(self):
        # Two readers park with their reads in opposite orders, so a
        # rebind sweep visits them differently than the park queue was
        # built -- the reconstruction must not reorder any witness.
        loser = Transaction([write("x", 5), write("x", 6)], label="loser")
        r1 = Transaction([read("x", 5), read("y", 9)], label="r1")
        r2 = Transaction([read("y", 9), read("x", 5)], label="r2")
        winner = Transaction([write("x", 5)], label="winner")
        ywriter = Transaction([write("y", 9)], label="ywriter")
        history = History.from_sessions([[loser], [r1], [r2], [winner], [ywriter]])
        orders = random.Random(0).sample(list(permutations(range(5))), 16)
        self._matrix(history, orders)


class TestDuplicateRefusalParity:
    """The refusal diagnostic is byte-identical across the whole matrix."""

    def _refused_records(self):
        t1 = Transaction([write("x", 1)], label="w1")
        t2 = Transaction([read("x", 1)], label="r")
        t3 = Transaction([write("x", 1)], label="w2")
        history = History.from_sessions([[t1], [t2], [t3]])
        return [(sid, raw_of(history.transactions[history.sessions[sid][0]]))
                for sid in range(3)]

    def test_identical_message_at_every_batch_size(self):
        records = self._refused_records()
        messages = set()
        for batch_ops in BATCH_SIZES:
            for fallback in (False, True):
                with pytest.raises(HistoryFormatError) as excinfo:
                    run_stream(records, 3, batch_ops, fallback=fallback)
                messages.add(str(excinfo.value))
        assert len(messages) == 1, messages
        message = messages.pop()
        assert "duplicate write W(x, 1)" in message
        assert "w2" in message
        assert "--stream" in message


@needs_numpy
class TestNoNumpySubprocess:
    """AWDIT_NO_NUMPY=1 is answer-identical from a real subprocess."""

    _SCRIPT = (
        "import json, sys\n"
        "from repro.core import IsolationLevel\n"
        "from repro.stream import check_stream_file\n"
        "out = []\n"
        "for level in IsolationLevel:\n"
        "    r = check_stream_file(sys.argv[1], level, fmt='plume',\n"
        "                          engine='compiled')\n"
        "    out.append([level.name, r.is_consistent,\n"
        "                [v.message for v in r.violations],\n"
        "                r.stats.get('classify_kernel')])\n"
        "print(json.dumps(out))\n"
    )

    def _run_subprocess(self, path, no_numpy):
        env = dict(os.environ)
        if no_numpy:
            env["AWDIT_NO_NUMPY"] = "1"
        else:
            env.pop("AWDIT_NO_NUMPY", None)
        proc = subprocess.run(
            [sys.executable, "-c", self._SCRIPT, path],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        return json.loads(proc.stdout)

    def test_stream_file_parity(self, tmp_path):
        history = inject_anomaly(
            generate_random_history(
                RandomHistoryConfig(
                    num_sessions=4,
                    num_transactions=300,
                    num_keys=10,
                    min_ops_per_txn=2,
                    max_ops_per_txn=6,
                    read_fraction=0.5,
                    mode="random_reads",
                    seed=21,
                )
            ),
            INJECTABLE_ANOMALIES[0],
        )
        path = tmp_path / "parity.plume"
        save_history(history, str(path), fmt="plume")
        with_numpy = self._run_subprocess(str(path), no_numpy=False)
        without = self._run_subprocess(str(path), no_numpy=True)
        for a, b in zip(with_numpy, without):
            assert a[:3] == b[:3], a[0]
        assert {row[3] for row in with_numpy} == {"vectorized"}
        assert {row[3] for row in without} == {"fallback"}


class TestRetireStraddlesCompaction:
    """--retire compaction drops the registry; the next batch rebuilds it."""

    def _stream(self):
        return generate_random_stream(
            RandomHistoryConfig(
                num_sessions=6,
                num_transactions=600,
                num_keys=30,
                abort_probability=0.05,
                seed=13,
            )
        )

    @needs_numpy
    def test_vectorized_verdicts_survive_compaction(self):
        history, order = self._stream()
        records = arrival_raw(history, order)
        want, _ = run_stream(records, history.num_sessions, 64)

        rebuilds = [0]
        real_rebuild = kernels.WritesIndex._rebuild

        def counting(self, writes, committed_of):
            rebuilds[0] += 1
            return real_rebuild(self, writes, committed_of)

        kernels.WritesIndex._rebuild = counting
        try:
            got, checker = run_stream(
                records,
                history.num_sessions,
                64,
                retire=RetirementPolicy(lag=64, every=16),
            )
        finally:
            kernels.WritesIndex._rebuild = real_rebuild
        assert got == want
        # The run genuinely retired (non-vacuous), and resolve_reads kept
        # answering across the invalidations: at least one rebuild per
        # compaction pass beyond the initial build.
        assert checker._retire_stats.retired_transactions > 300
        assert checker._retire_stats.passes >= 1
        assert rebuilds[0] > checker._retire_stats.passes

    def test_fallback_verdicts_survive_compaction(self):
        history, order = self._stream()
        records = arrival_raw(history, order)
        want, _ = run_stream(records, history.num_sessions, 64, fallback=True)
        got, checker = run_stream(
            records,
            history.num_sessions,
            64,
            fallback=True,
            retire=RetirementPolicy(lag=64, every=16),
        )
        assert got == want
        assert checker._retire_stats.retired_transactions > 300


class TestCheckpointAcrossResolver:
    """The flat registry is derived state: never pickled, always rebuilt."""

    def _history(self):
        return generate_random_history(
            RandomHistoryConfig(
                num_sessions=4, num_transactions=200, num_keys=12, seed=9
            )
        )

    def test_registry_not_serialized(self):
        history = self._history()
        checker = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        checker.extend_raw(iter(interleaved_raw(history, 5)), batch_ops=64)
        state = checker.__getstate__()
        assert "_writes_index" not in state
        assert "_wb_probe" not in state

    def test_checkpoint_resume_rebuilds_registry(self, tmp_path):
        history = self._history()
        records = interleaved_raw(history, 5)
        cut = len(records) // 2
        want, _ = run_stream(records, history.num_sessions, 64)

        with vector_floor():
            first = CompiledIncrementalChecker(num_sessions=history.num_sessions)
            first.extend_raw(iter(records[:cut]), batch_ops=64)
            path = tmp_path / "resume.ck"
            first.save_checkpoint(str(path))
            resumed = load_checkpoint(str(path))
            resumed.extend_raw(iter(records[cut:]), batch_ops=64)
            assert digest(resumed.finalize()) == want

    def test_pre_kernel_pickle_resumes_through_backfill(self):
        # Emulate a v5 checkpoint written before the resolve kernel (and
        # the columnar state) existed: object-heap layout, no resolve
        # counters, no slow_reads slot, and the old rebind table still
        # attached.  __setstate__ must backfill the counters, force the
        # conservative slow path, and migrate the objects into columns;
        # the resumed run must converge on the same verdicts.
        history = self._history()
        records = interleaved_raw(history, 5)
        cut = len(records) // 2
        want, _ = run_stream(records, history.num_sessions, 64)

        with vector_floor():
            first = CompiledIncrementalChecker(num_sessions=history.num_sessions)
            first.extend_raw(iter(records[:cut]), batch_ops=64)
            aged = pickle.loads(pickle.dumps(first))
            make_legacy_checker_state(aged)
            for rec in aged._txns:
                try:
                    del rec.slow_reads
                except AttributeError:
                    pass
            for name in (
                "_resolve_fast",
                "_resolve_slow",
                "_resolve_parked",
                "_resolve_rebound",
                "_resolve_vectorized",
                "_resolve_scalar",
            ):
                aged.__dict__.pop(name, None)
            aged.__dict__["_rebindable"] = {}
            resumed = pickle.loads(pickle.dumps(aged))
            assert "_rebindable" not in resumed.__dict__
            assert "_txns" not in resumed.__dict__
            assert resumed._resolve_fast == 0
            assert all(slow == 1 for slow in resumed._t_slow)
            resumed.extend_raw(iter(records[cut:]), batch_ops=64)
            assert digest(resumed.finalize()) == want


class TestShardImportSurface:
    """Worker bootstrap imports the kernel at module scope."""

    def test_parallel_reexports_resolver(self):
        from repro.shard import parallel

        assert parallel.resolve_reads is kernels.resolve_reads
        assert parallel.WritesIndex is kernels.WritesIndex
        assert parallel.ParkQueue is kernels.ParkQueue
        assert parallel.join_clocks is kernels.join_clocks
