"""Tests for the history builder, the random generator, and anomaly injection."""

import random

import pytest

from repro.core import IsolationLevel, check, check_all_levels
from repro.core.exceptions import UsageError
from repro.core.model import OpRef, read, write, Transaction
from repro.core.violations import ViolationKind
from repro.histories.builder import HistoryBuilder
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    inject_anomaly,
)


class TestHistoryBuilder:
    def test_fluent_construction(self):
        history = (
            HistoryBuilder()
            .session()
            .txn("t1").write("x", 1).write("y", 1).end()
            .txn("t2").write("x", 2).end()
            .session()
            .txn("t3").read("x", 2).read("x", 1).end()
            .build()
        )
        assert history.num_sessions == 2
        assert history.num_transactions == 3
        assert not check(history, IsolationLevel.READ_COMMITTED).is_consistent

    def test_txn_without_session_creates_one(self):
        history = HistoryBuilder().txn("t1").write("x", 1).end().build()
        assert history.num_sessions == 1

    def test_aborted_transaction(self):
        history = (
            HistoryBuilder()
            .session()
            .txn("t1", committed=False).write("x", 1).end()
            .build()
        )
        assert history.aborted == [0]

    def test_duplicate_labels_rejected(self):
        builder = HistoryBuilder().session()
        builder.txn("t1").write("x", 1).end()
        with pytest.raises(UsageError):
            builder.txn("t1").write("x", 2).end()

    def test_transaction_by_label(self):
        builder = HistoryBuilder().session()
        builder.txn("t1").write("x", 1).end()
        assert builder.transaction_by_label("t1").label == "t1"
        with pytest.raises(UsageError):
            builder.transaction_by_label("nope")

    def test_empty_history_rejected(self):
        with pytest.raises(UsageError):
            HistoryBuilder().build()

    def test_add_prebuilt_transaction_and_op(self):
        builder = HistoryBuilder().session()
        builder.add_transaction(Transaction([write("x", 1)], label="init"))
        builder.txn("t2").op(read("x", 1)).end()
        history = builder.build()
        assert history.num_transactions == 2

    def test_explicit_wr_passed_through(self):
        builder = HistoryBuilder().session()
        builder.txn("w").write("x", 1).end()
        builder.session().txn("r").read("x", 1).end()
        history = builder.build(wr={OpRef(1, 0): OpRef(0, 0)})
        assert history.writer_of(OpRef(1, 0)) == OpRef(0, 0)


class TestRandomHistoryGenerator:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            RandomHistoryConfig(num_sessions=0).validate()
        with pytest.raises(ValueError):
            RandomHistoryConfig(num_keys=0).validate()
        with pytest.raises(ValueError):
            RandomHistoryConfig(min_ops_per_txn=5, max_ops_per_txn=2).validate()
        with pytest.raises(ValueError):
            RandomHistoryConfig(read_fraction=1.5).validate()
        with pytest.raises(ValueError):
            RandomHistoryConfig(abort_probability=1.0).validate()
        with pytest.raises(ValueError):
            RandomHistoryConfig(mode="chaotic").validate()

    def test_deterministic_given_seed(self):
        config = RandomHistoryConfig(seed=11, num_transactions=30)
        first = generate_random_history(config)
        second = generate_random_history(config)
        assert first.num_operations == second.num_operations
        assert [t.operations for t in first.transactions] == [
            t.operations for t in second.transactions
        ]

    def test_serializable_mode_histories_are_consistent(self):
        for seed in range(5):
            config = RandomHistoryConfig(seed=seed, num_transactions=40)
            history = generate_random_history(config)
            results = check_all_levels(history)
            assert all(result.is_consistent for result in results.values())

    def test_requested_transaction_count(self):
        config = RandomHistoryConfig(seed=0, num_transactions=25, num_sessions=3)
        history = generate_random_history(config)
        assert history.num_transactions == 25
        assert history.num_sessions == 3

    def test_abort_probability_produces_aborted_transactions(self):
        config = RandomHistoryConfig(seed=2, num_transactions=60, abort_probability=0.4)
        history = generate_random_history(config)
        assert history.aborted

    def test_random_reads_mode_often_inconsistent(self):
        inconsistent = 0
        for seed in range(8):
            config = RandomHistoryConfig(
                seed=seed, num_transactions=40, mode="random_reads", num_keys=4
            )
            history = generate_random_history(config)
            if not check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent:
                inconsistent += 1
        assert inconsistent >= 4


class TestAnomalyInjection:
    @pytest.mark.parametrize("kind", INJECTABLE_ANOMALIES)
    def test_injected_anomaly_is_detected(self, kind):
        base = generate_random_history(RandomHistoryConfig(seed=5, num_transactions=20))
        mutated = inject_anomaly(base, kind, rng=random.Random(1))
        results = check_all_levels(mutated)
        found = set()
        for result in results.values():
            found.update(result.violation_kinds())
        assert kind in found

    def test_base_history_not_mutated(self):
        base = generate_random_history(RandomHistoryConfig(seed=5, num_transactions=15))
        before = base.num_transactions
        inject_anomaly(base, ViolationKind.FUTURE_READ)
        assert base.num_transactions == before

    def test_injection_preserves_consistency_elsewhere(self):
        base = generate_random_history(RandomHistoryConfig(seed=7, num_transactions=20))
        mutated = inject_anomaly(base, ViolationKind.FUTURE_READ)
        result = check_all_levels(mutated)[IsolationLevel.CAUSAL_CONSISTENCY]
        kinds = result.violation_kinds()
        assert kinds == [ViolationKind.FUTURE_READ]

    def test_unknown_kind_rejected(self):
        base = generate_random_history(RandomHistoryConfig(seed=5, num_transactions=5))
        with pytest.raises(ValueError):
            inject_anomaly(base, "not-a-violation-kind")
