"""End-to-end tests for the ``awdit`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.histories.formats import load_history, save_history

from helpers import fig_4a, fig_4d


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["check", "h.json", "-i", "rc"])
        assert args.command == "check" and args.isolation == "rc"

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCheckCommand:
    def test_consistent_history_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.json"
        save_history(fig_4d(), str(path))
        assert main(["check", str(path), "-i", "cc"]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_inconsistent_history_exits_one_and_prints_witness(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        save_history(fig_4a(), str(path))
        assert main(["check", str(path), "-i", "rc"]) == 1
        output = capsys.readouterr().out
        assert "VIOLATION" in output
        assert "cycle" in output

    def test_baseline_checker_selectable(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4d(), str(path))
        assert main(["check", str(path), "-i", "cc", "--checker", "plume"]) == 0
        assert "plume" in capsys.readouterr().out

    def test_unknown_checker_exits_two(self, tmp_path):
        path = tmp_path / "h.json"
        save_history(fig_4d(), str(path))
        assert main(["check", str(path), "--checker", "mystery"]) == 2

    def test_isolation_aliases(self, tmp_path):
        path = tmp_path / "h.json"
        save_history(fig_4d(), str(path))
        assert main(["check", str(path), "-i", "read atomic"]) == 0

    @pytest.mark.parametrize("engine", ["auto", "compiled", "sharded", "object"])
    def test_engines_agree_on_verdict_and_witnesses(self, tmp_path, capsys, engine):
        path = tmp_path / "bad.json"
        save_history(fig_4a(), str(path))
        assert main(["check", str(path), "-i", "rc", "--engine", engine]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "cycle" in out

    @pytest.mark.parametrize("jobs", ["1", "2", "4"])
    def test_jobs_flag_checks_sharded(self, tmp_path, capsys, jobs):
        path = tmp_path / "bad.json"
        save_history(fig_4a(), str(path))
        assert main(["check", str(path), "-i", "rc", "--jobs", jobs]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "cycle" in out


class TestCheckFlagConflicts:
    """Incoherent flag combinations exit 2 instead of silently falling back.

    Engine and mode are orthogonal (``--stream --engine compiled`` and
    ``--stream --jobs N`` are the compiled streaming paths); what stays
    rejected is baseline checkers with awdit-engine flags, ``--jobs`` on the
    single-process engines, and checkpointing outside the compiled
    streaming path.
    """

    @pytest.fixture()
    def history_path(self, tmp_path):
        path = tmp_path / "h.json"
        save_history(fig_4d(), str(path))
        return str(path)

    @pytest.mark.parametrize(
        "flags",
        [
            ["--checker", "plume", "--engine", "compiled"],
            ["--checker", "plume", "--engine", "object"],
            ["--checker", "plume", "--jobs", "2"],
            ["--checker", "plume", "--stream"],
            ["--engine", "object", "--jobs", "2"],
            ["--engine", "compiled", "--jobs", "2"],
            ["--jobs", "0"],
            ["--stream", "--engine", "object", "--jobs", "2"],
            ["--stream", "--engine", "object", "--checkpoint", "state.awd"],
            ["--stream", "--checkpoint", "state.awd", "--checkpoint-every", "0"],
            ["--stream", "--checkpoint-every", "100"],
            ["--stream", "--resume"],
            ["--checkpoint", "state.awd"],
            ["--checkpoint-every", "100"],
            ["--retire"],
            ["--stream", "--retire-lag", "64"],
            ["--stream", "--retire-every", "64"],
            ["--stream", "--segment-dir", "segs"],
            ["--stream", "--retire", "--retire-lag", "-1"],
            ["--stream", "--retire", "--retire-every", "0"],
            ["--stream", "--retire", "--checkpoint", "state.awd"],
            ["--stream", "--retire", "--checker", "plume"],
        ],
        ids=lambda flags: " ".join(flags),
    )
    def test_conflicting_flags_exit_two(self, history_path, capsys, flags):
        assert main(["check", history_path, "-i", "cc"] + flags) == 2
        err = capsys.readouterr().err
        assert "awdit: error:" in err or "--stream" in err

    @pytest.mark.parametrize(
        "flags",
        [
            ["--stream"],
            ["--stream", "--engine", "compiled"],
            ["--stream", "--engine", "object"],
            ["--stream", "--engine", "sharded"],
            ["--stream", "--jobs", "2"],
            ["--stream", "--engine", "sharded", "--jobs", "2"],
            ["--stream", "--retire"],
            ["--stream", "--retire", "--retire-lag", "0", "--retire-every", "1"],
            ["--stream", "--engine", "object", "--retire"],
        ],
        ids=lambda flags: " ".join(flags),
    )
    def test_engine_and_mode_compose(self, history_path, capsys, flags):
        assert main(["check", history_path, "-i", "cc"] + flags) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_stream_with_baseline_checker_still_rejected(self, history_path, capsys):
        assert main(["check", history_path, "--stream", "--checker", "plume"]) == 2
        assert "awdit" in capsys.readouterr().err.lower()

    def test_stream_checkpoint_and_resume_round_trip(self, tmp_path, capsys):
        path = tmp_path / "h.plume"
        save_history(fig_4d(), str(path), fmt="plume")
        state = tmp_path / "state.awd"
        assert (
            main(
                [
                    "check", str(path), "-i", "cc", "--stream",
                    "--checkpoint", str(state), "--checkpoint-every", "2",
                ]
            )
            == 0
        )
        first = capsys.readouterr().out
        assert state.exists()
        assert (
            main(
                [
                    "check", str(path), "-i", "cc", "--stream",
                    "--checkpoint", str(state), "--resume",
                ]
            )
            == 0
        )
        resumed = capsys.readouterr().out
        assert "CONSISTENT" in first and "CONSISTENT" in resumed

    def test_retire_with_checkpoint_needs_segment_dir(self, tmp_path, capsys):
        path = tmp_path / "h.plume"
        save_history(fig_4d(), str(path), fmt="plume")
        state = tmp_path / "state.awd"
        args = [
            "check", str(path), "-i", "cc", "--stream", "--retire",
            "--checkpoint", str(state),
        ]
        assert main(args) == 2
        assert "--segment-dir" in capsys.readouterr().err
        assert (
            main(args + ["--segment-dir", str(tmp_path / "segs")]) == 0
        )
        assert "CONSISTENT" in capsys.readouterr().out

    def test_retiring_check_matches_plain_output(self, tmp_path, capsys):
        path = tmp_path / "h.plume"
        save_history(fig_4a(), str(path), fmt="plume")
        assert main(["check", str(path), "-i", "rc", "--stream"]) == 1
        plain = capsys.readouterr().out
        assert (
            main(
                [
                    "check", str(path), "-i", "rc", "--stream", "--retire",
                    "--retire-lag", "0", "--retire-every", "1",
                ]
            )
            == 1
        )
        retiring = capsys.readouterr().out
        # Witness text is byte-identical; only the wall-clock line differs.
        assert plain.splitlines()[1:] == retiring.splitlines()[1:]

    def test_stats_stream_retire_prints_counters(self, tmp_path, capsys):
        path = tmp_path / "h.plume"
        save_history(fig_4d(), str(path), fmt="plume")
        assert main(["stats", str(path), "--stream", "--retire"]) == 0
        out = capsys.readouterr().out
        assert "retirement:" in out
        assert "retired transactions" in out
        assert main(["stats", str(path), "--retire"]) == 2
        assert "--stream" in capsys.readouterr().err


class TestGenerateCommand:
    def test_generate_writes_a_parseable_history(self, tmp_path, capsys):
        out = tmp_path / "generated.json"
        code = main(
            [
                "generate",
                str(out),
                "--workload",
                "ctwitter",
                "--database",
                "postgres",
                "--sessions",
                "4",
                "--transactions",
                "40",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        history = load_history(str(out))
        assert history.num_sessions == 4
        assert history.num_transactions == 41  # +1 init transaction

    def test_generate_respects_isolation_mode_flag(self, tmp_path):
        out = tmp_path / "weak.json"
        code = main(
            [
                "generate",
                str(out),
                "--workload",
                "custom",
                "--database",
                "cockroach",
                "--isolation-mode",
                "read-committed",
                "--sessions",
                "3",
                "--transactions",
                "30",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        assert json.loads(out.read_text())["sessions"]


class TestConvertAndStats:
    def test_convert_between_formats(self, tmp_path, capsys):
        src = tmp_path / "h.json"
        dst = tmp_path / "h.plume"
        save_history(fig_4a(), str(src))
        assert main(["convert", str(src), str(dst)]) == 0
        converted = load_history(str(dst))
        assert converted.num_operations == fig_4a().num_operations

    def test_stats_prints_summary(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4a(), str(path))
        assert main(["stats", str(path)]) == 0
        output = capsys.readouterr().out
        assert "transactions" in output
        assert "distinct keys" in output

    def test_stats_reports_interned_cardinalities_and_footprint(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4a(), str(path))
        assert main(["stats", str(path)]) == 0
        output = capsys.readouterr().out
        # fig_4a: one key (x), two values (1, 2), two sessions.
        assert "distinct keys          : 1" in output
        assert "interned values        : 2" in output
        assert "interned sessions      : 2" in output
        assert "compiled footprint" in output and "KiB" in output

    def test_stats_jobs_reports_shard_merge_cardinalities(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4a(), str(path))
        assert main(["stats", str(path), "--jobs", "2"]) == 0
        output = capsys.readouterr().out
        assert "shard merge (2 shards):" in output
        assert "shard 0:" in output and "shard 1:" in output
        assert "merged : keys=1 values=2 sessions=2" in output
        # The single-shard summary lines are unchanged.
        assert "distinct keys          : 1" in output

    def test_stats_invalid_jobs_exits_two(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4a(), str(path))
        assert main(["stats", str(path), "--jobs", "0"]) == 2
        assert "awdit: error:" in capsys.readouterr().err

    def test_stats_stream_reports_live_state_peaks(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4a(), str(path))
        assert main(["stats", str(path), "--stream"]) == 0
        output = capsys.readouterr().out
        assert "Online core over 3 transactions" in output
        assert "pending reads" in output
        assert "interned keys          : 1" in output
        assert "writes index entries   : 2" in output

    def test_stats_stream_conflicts_with_jobs(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4a(), str(path))
        assert main(["stats", str(path), "--stream", "--jobs", "2"]) == 2
        assert "awdit: error:" in capsys.readouterr().err
