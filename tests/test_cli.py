"""End-to-end tests for the ``awdit`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.histories.formats import load_history, save_history

from helpers import fig_4a, fig_4d


class TestParser:
    def test_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["check", "h.json", "-i", "rc"])
        assert args.command == "check" and args.isolation == "rc"

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCheckCommand:
    def test_consistent_history_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.json"
        save_history(fig_4d(), str(path))
        assert main(["check", str(path), "-i", "cc"]) == 0
        assert "CONSISTENT" in capsys.readouterr().out

    def test_inconsistent_history_exits_one_and_prints_witness(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        save_history(fig_4a(), str(path))
        assert main(["check", str(path), "-i", "rc"]) == 1
        output = capsys.readouterr().out
        assert "VIOLATION" in output
        assert "cycle" in output

    def test_baseline_checker_selectable(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4d(), str(path))
        assert main(["check", str(path), "-i", "cc", "--checker", "plume"]) == 0
        assert "plume" in capsys.readouterr().out

    def test_unknown_checker_exits_two(self, tmp_path):
        path = tmp_path / "h.json"
        save_history(fig_4d(), str(path))
        assert main(["check", str(path), "--checker", "mystery"]) == 2

    def test_isolation_aliases(self, tmp_path):
        path = tmp_path / "h.json"
        save_history(fig_4d(), str(path))
        assert main(["check", str(path), "-i", "read atomic"]) == 0

    @pytest.mark.parametrize("engine", ["auto", "compiled", "object"])
    def test_engines_agree_on_verdict_and_witnesses(self, tmp_path, capsys, engine):
        path = tmp_path / "bad.json"
        save_history(fig_4a(), str(path))
        assert main(["check", str(path), "-i", "rc", "--engine", engine]) == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out and "cycle" in out


class TestGenerateCommand:
    def test_generate_writes_a_parseable_history(self, tmp_path, capsys):
        out = tmp_path / "generated.json"
        code = main(
            [
                "generate",
                str(out),
                "--workload",
                "ctwitter",
                "--database",
                "postgres",
                "--sessions",
                "4",
                "--transactions",
                "40",
                "--seed",
                "1",
            ]
        )
        assert code == 0
        history = load_history(str(out))
        assert history.num_sessions == 4
        assert history.num_transactions == 41  # +1 init transaction

    def test_generate_respects_isolation_mode_flag(self, tmp_path):
        out = tmp_path / "weak.json"
        code = main(
            [
                "generate",
                str(out),
                "--workload",
                "custom",
                "--database",
                "cockroach",
                "--isolation-mode",
                "read-committed",
                "--sessions",
                "3",
                "--transactions",
                "30",
                "--seed",
                "2",
            ]
        )
        assert code == 0
        assert json.loads(out.read_text())["sessions"]


class TestConvertAndStats:
    def test_convert_between_formats(self, tmp_path, capsys):
        src = tmp_path / "h.json"
        dst = tmp_path / "h.plume"
        save_history(fig_4a(), str(src))
        assert main(["convert", str(src), str(dst)]) == 0
        converted = load_history(str(dst))
        assert converted.num_operations == fig_4a().num_operations

    def test_stats_prints_summary(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4a(), str(path))
        assert main(["stats", str(path)]) == 0
        output = capsys.readouterr().out
        assert "transactions" in output
        assert "distinct keys" in output

    def test_stats_reports_interned_cardinalities_and_footprint(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        save_history(fig_4a(), str(path))
        assert main(["stats", str(path)]) == 0
        output = capsys.readouterr().out
        # fig_4a: one key (x), two values (1, 2), two sessions.
        assert "distinct keys          : 1" in output
        assert "interned values        : 2" in output
        assert "interned sessions      : 2" in output
        assert "compiled footprint" in output and "KiB" in output
