"""Tests for the Read Atomic checker (Algorithm 2 and Theorem 1.6)."""

import pytest

from repro.core.model import History, Transaction, read, write
from repro.core.ra import (
    check_ra,
    check_ra_single_session,
    check_repeatable_reads,
)
from repro.core.violations import ViolationKind

from helpers import fig_1a, fig_4a, fig_4b, fig_4c, fig_4d


class TestVerdicts:
    def test_fig_4b_is_ra_inconsistent(self):
        result = check_ra(fig_4b())
        assert not result.is_consistent

    def test_fig_4c_is_ra_consistent(self):
        assert check_ra(fig_4c()).is_consistent

    def test_fig_4d_is_ra_consistent(self):
        assert check_ra(fig_4d()).is_consistent

    def test_fig_4a_and_1a_are_ra_inconsistent(self):
        assert not check_ra(fig_4a()).is_consistent
        assert not check_ra(fig_1a()).is_consistent

    def test_write_only_history_is_consistent(self):
        sessions = [[Transaction([write(f"k{i}", i)]) for i in range(4)]]
        assert check_ra(History.from_sessions(sessions)).is_consistent


class TestFracturedReads:
    def test_concurrent_writers_allow_either_commit_order(self):
        # t3 reads y from t2 and x from t1; t1 and t2 are concurrent, so a
        # commit order placing t2 before t1 satisfies the RA axiom.
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
        t3 = Transaction([read("y", 2), read("x", 1)], label="t3")
        history = History.from_sessions([[t1], [t2], [t3]])
        assert check_ra(history).is_consistent

    def test_fractured_read_of_ordered_writers_is_a_violation(self):
        # Same shape as Fig. 4b but the writers are ordered by wr instead of
        # so: t2 observes t1, so t1 must commit first, yet t3 reads y from t2
        # and the stale x from t1.
        t1 = Transaction([write("x", 1), write("y", 1)], label="t1")
        t2 = Transaction([read("y", 1), write("x", 2), write("z", 2)], label="t2")
        t3 = Transaction([read("z", 2), read("x", 1)], label="t3")
        history = History.from_sessions([[t1], [t2], [t3]])
        assert not check_ra(history).is_consistent

    def test_observing_all_of_a_transaction_is_fine(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
        t3 = Transaction([read("y", 2), read("x", 2)], label="t3")
        history = History.from_sessions([[t1], [t2], [t3]])
        assert check_ra(history).is_consistent

    def test_session_order_case_of_the_axiom(self):
        # t2 is an so-predecessor of the reader and writes x; since t2 also
        # observed t1 (forcing t1 before t2), reading the older x from t1
        # violates RA.
        t1 = Transaction([write("x", 1), write("y", 1)], label="t1")
        t2 = Transaction([read("y", 1), write("x", 2)], label="t2")
        t3 = Transaction([read("x", 1)], label="t3")
        history = History.from_sessions([[t1], [t2, t3]])
        assert not check_ra(history).is_consistent

    def test_session_order_case_consistent_variant(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2)], label="t2")
        t3 = Transaction([read("x", 2)], label="t3")
        history = History.from_sessions([[t1], [t2, t3]])
        assert check_ra(history).is_consistent


class TestRepeatableReads:
    def test_reading_same_key_from_two_transactions_reported(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2)], label="t2")
        t3 = Transaction([read("x", 1), read("x", 2)], label="t3")
        history = History.from_sessions([[t1], [t2], [t3]])
        violations = check_repeatable_reads(history, set())
        assert len(violations) == 1
        assert violations[0].kind is ViolationKind.NON_REPEATABLE_READ

    def test_rereading_same_transaction_is_fine(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t3 = Transaction([read("x", 1), read("x", 1)], label="t3")
        history = History.from_sessions([[t1], [t3]])
        assert check_repeatable_reads(history, set()) == []

    def test_non_repeatable_read_makes_history_ra_inconsistent(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2)], label="t2")
        t3 = Transaction([read("x", 1), read("x", 2)], label="t3")
        history = History.from_sessions([[t1], [t2], [t3]])
        result = check_ra(history)
        assert not result.is_consistent
        assert ViolationKind.NON_REPEATABLE_READ in result.violation_kinds()


class TestSingleSession:
    def test_single_session_fast_path_requires_one_session(self):
        with pytest.raises(ValueError):
            check_ra_single_session(fig_4b())

    def test_single_session_consistent_history(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2)], label="t2")
        t3 = Transaction([read("x", 2)], label="t3")
        history = History.from_sessions([[t1, t2, t3]])
        assert check_ra_single_session(history).is_consistent

    def test_single_session_stale_read_is_violation(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2)], label="t2")
        t3 = Transaction([read("x", 1)], label="t3")
        history = History.from_sessions([[t1, t2, t3]])
        assert not check_ra_single_session(history).is_consistent

    def test_fast_path_agrees_with_general_algorithm(self):
        histories = []
        t1 = Transaction([write("x", 1), write("y", 1)])
        t2 = Transaction([read("x", 1), write("x", 2)])
        t3 = Transaction([read("y", 1), read("x", 2)])
        histories.append(History.from_sessions([[t1, t2, t3]]))
        u1 = Transaction([write("x", 1)])
        u2 = Transaction([write("x", 2)])
        u3 = Transaction([read("x", 1)])
        histories.append(History.from_sessions([[u1, u2, u3]]))
        for history in histories:
            assert (
                check_ra_single_session(history).is_consistent
                == check_ra(history).is_consistent
            )

    def test_fast_path_checker_name(self):
        history = History.from_sessions([[Transaction([write("x", 1)])]])
        assert check_ra_single_session(history).checker == "awdit-1session"


class TestReporting:
    def test_stats_and_metadata(self):
        result = check_ra(fig_4b())
        assert result.level.short_name == "RA"
        assert result.num_sessions == 2
        assert "inferred_edges" in result.stats

    def test_read_consistency_failures_propagate(self):
        history = History.from_sessions([[Transaction([read("x", 3)])]])
        result = check_ra(history)
        assert ViolationKind.THIN_AIR_READ in result.violation_kinds()
