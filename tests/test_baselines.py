"""Tests for the baseline checkers (naive, Plume-like, DBCop-like, CausalC+-like)."""

import pytest

from repro.core import IsolationLevel, check
from repro.baselines import BASELINE_REGISTRY
from repro.baselines.causalc import build_cc_program, check_cc_causalc
from repro.baselines.datalog import Atom, DatalogProgram, Rule, Variable
from repro.baselines.dbcop import check_cc_dbcop
from repro.baselines.naive import (
    check_cc_naive,
    check_naive,
    check_ra_naive,
    check_rc_naive,
)
from repro.baselines.plume import PlumeIndex, check_plume
from repro.histories.generator import RandomHistoryConfig, generate_random_history

from helpers import PAPER_VERDICTS, all_paper_histories


LEVELS = [
    IsolationLevel.READ_COMMITTED,
    IsolationLevel.READ_ATOMIC,
    IsolationLevel.CAUSAL_CONSISTENCY,
]


class TestNaiveOracle:
    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    def test_naive_matches_paper_verdicts(self, name):
        history = all_paper_histories()[name]
        expected = PAPER_VERDICTS[name]
        got = (
            check_rc_naive(history).is_consistent,
            check_ra_naive(history).is_consistent,
            check_cc_naive(history).is_consistent,
        )
        assert got == expected

    def test_dispatch_by_level(self):
        history = all_paper_histories()["fig_4b"]
        assert check_naive(history, IsolationLevel.READ_COMMITTED).checker == "naive"
        with pytest.raises(ValueError):
            check_naive(history, "bad-level")

    @pytest.mark.parametrize("level", LEVELS)
    def test_naive_agrees_with_awdit_on_random_histories(self, level):
        for seed in range(12):
            for mode in ("serializable", "random_reads"):
                history = generate_random_history(
                    RandomHistoryConfig(
                        seed=seed,
                        mode=mode,
                        num_transactions=22,
                        num_sessions=4,
                        num_keys=5,
                        abort_probability=0.1,
                    )
                )
                assert (
                    check(history, level).is_consistent
                    == check_naive(history, level).is_consistent
                )


class TestPlumeLike:
    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    @pytest.mark.parametrize("level", LEVELS)
    def test_plume_matches_awdit_on_paper_histories(self, name, level):
        history = all_paper_histories()[name]
        assert (
            check_plume(history, level).is_consistent
            == check(history, level).is_consistent
        )

    def test_plume_index_structures(self):
        history = all_paper_histories()["fig_4c"]
        index = PlumeIndex(history, set())
        assert "x" in index.writers_of_key
        hb = index.compute_hb()
        assert hb is not None
        # t1 (tid 0) happens before t4 (tid 3) through t2/t3.
        assert index.happens_before(0, 3)
        assert not index.happens_before(3, 0)

    def test_plume_handles_causality_cycle(self):
        from repro.core.model import History, Transaction, read, write

        t1 = Transaction([write("x", 1), read("y", 2)], label="t1")
        t2 = Transaction([write("y", 2), read("x", 1)], label="t2")
        history = History.from_sessions([[t1], [t2]])
        result = check_plume(history, IsolationLevel.CAUSAL_CONSISTENCY)
        assert not result.is_consistent

    def test_plume_rejects_unknown_level(self):
        history = all_paper_histories()["fig_4b"]
        with pytest.raises(ValueError):
            check_plume(history, "nope")

    def test_plume_reports_construction_phase_timing(self):
        history = all_paper_histories()["fig_1a"]
        result = check_plume(history, IsolationLevel.READ_COMMITTED)
        assert "construction" in result.stats


class TestCCOnlyBaselines:
    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    def test_dbcop_matches_cc_verdict(self, name):
        history = all_paper_histories()[name]
        expected = PAPER_VERDICTS[name][2]
        assert check_cc_dbcop(history).is_consistent == expected

    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    def test_causalc_matches_cc_verdict(self, name):
        history = all_paper_histories()[name]
        expected = PAPER_VERDICTS[name][2]
        assert check_cc_causalc(history).is_consistent == expected

    def test_cc_baselines_agree_with_awdit_on_random_histories(self):
        for seed in range(6):
            history = generate_random_history(
                RandomHistoryConfig(
                    seed=seed, mode="random_reads", num_transactions=16, num_keys=4
                )
            )
            expected = check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
            assert check_cc_dbcop(history).is_consistent == expected
            assert check_cc_causalc(history).is_consistent == expected

    def test_registry_contains_all_paper_baselines(self):
        assert {"naive", "plume", "dbcop", "causalc+", "tcc-mono", "polysi"} <= set(
            BASELINE_REGISTRY
        )

    def test_registry_callables_return_results(self):
        history = all_paper_histories()["fig_4d"]
        for name, checker in BASELINE_REGISTRY.items():
            result = checker(history, IsolationLevel.CAUSAL_CONSISTENCY)
            assert result.num_transactions == history.num_transactions


class TestDatalogEngine:
    def test_transitive_closure(self):
        x, y, z = Variable("X"), Variable("Y"), Variable("Z")
        program = DatalogProgram(
            [
                Rule(Atom("path", (x, y)), (Atom("edge", (x, y)),)),
                Rule(Atom("path", (x, z)), (Atom("path", (x, y)), Atom("edge", (y, z)))),
            ]
        )
        result = program.evaluate({"edge": {(1, 2), (2, 3), (3, 4)}})
        assert (1, 4) in result["path"]
        assert len(result["path"]) == 6

    def test_constants_in_rules(self):
        x = Variable("X")
        program = DatalogProgram(
            [Rule(Atom("reachable_from_one", (x,)), (Atom("edge", (1, x)),))]
        )
        result = program.evaluate({"edge": {(1, 2), (3, 4)}})
        assert result["reachable_from_one"] == {(2,)}

    def test_distinct_guard(self):
        x, y = Variable("X"), Variable("Y")
        program = DatalogProgram(
            [Rule(Atom("different", (x, y)), (Atom("pair", (x, y)),), distinct=((x, y),))]
        )
        result = program.evaluate({"pair": {(1, 1), (1, 2)}})
        assert result["different"] == {(1, 2)}

    def test_max_rounds_bounds_evaluation(self):
        x, y, z = Variable("X"), Variable("Y"), Variable("Z")
        program = DatalogProgram(
            [
                Rule(Atom("path", (x, y)), (Atom("edge", (x, y)),)),
                Rule(Atom("path", (x, z)), (Atom("path", (x, y)), Atom("path", (y, z)))),
            ]
        )
        edges = {(i, i + 1) for i in range(30)}
        bounded = program.evaluate({"edge": edges}, max_rounds=2)
        complete = program.evaluate({"edge": edges})
        assert len(bounded.get("path", set())) < len(complete["path"])

    def test_cc_program_shape(self):
        program = build_cc_program()
        heads = {rule.head.relation for rule in program.rules}
        assert {"hb", "co", "ord", "bad"} <= heads
