"""Tests for triangle detection and the lower-bound reductions (Section 4)."""

import pytest

from repro.core import IsolationLevel, check
from repro.lowerbounds.reductions import (
    general_reduction,
    ra_two_session_reduction,
    rc_single_session_reduction,
)
from repro.lowerbounds.triangles import (
    UndirectedGraph,
    find_triangle,
    has_triangle,
    random_graph,
)


class TestUndirectedGraph:
    def test_add_and_query_edges(self):
        graph = UndirectedGraph(3, [(0, 1)])
        assert graph.has_edge(0, 1) and graph.has_edge(1, 0)
        assert not graph.has_edge(0, 2)
        assert graph.num_edges == 1

    def test_self_loops_rejected(self):
        with pytest.raises(ValueError):
            UndirectedGraph(2).add_edge(1, 1)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            UndirectedGraph(2).add_edge(0, 5)

    def test_edges_listing_is_deduplicated(self):
        graph = UndirectedGraph(3, [(0, 1), (1, 0), (1, 2)])
        assert sorted(graph.edges()) == [(0, 1), (1, 2)]

    def test_neighbours(self):
        graph = UndirectedGraph(4, [(0, 1), (0, 2)])
        assert graph.neighbours(0) == {1, 2}


class TestTriangleDetection:
    def test_triangle_found(self):
        graph = UndirectedGraph(4, [(0, 1), (1, 2), (0, 2), (2, 3)])
        triangle = find_triangle(graph)
        assert triangle is not None
        a, b, c = triangle
        assert graph.has_edge(a, b) and graph.has_edge(b, c) and graph.has_edge(a, c)

    def test_triangle_free_graph(self):
        path = UndirectedGraph(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        assert not has_triangle(path)
        square = UndirectedGraph(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
        assert not has_triangle(square)

    def test_empty_graph_has_no_triangle(self):
        assert not has_triangle(UndirectedGraph(5))

    def test_random_graph_triangle_free_option(self):
        for seed in range(5):
            graph = random_graph(12, 0.5, seed=seed, triangle_free=True)
            assert not has_triangle(graph)

    def test_random_graph_is_deterministic(self):
        first = random_graph(10, 0.3, seed=7)
        second = random_graph(10, 0.3, seed=7)
        assert sorted(first.edges()) == sorted(second.edges())


class TestReductionCorrectness:
    """Lemmas 4.2, 4.3, and 4.4: consistency iff triangle-freeness."""

    @pytest.mark.parametrize("seed", range(6))
    def test_general_reduction_range_property(self, seed):
        graph = random_graph(7, 0.45, seed=seed)
        history = general_reduction(graph)
        triangle = has_triangle(graph)
        cc = check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
        rc = check(history, IsolationLevel.READ_COMMITTED).is_consistent
        if not triangle:
            assert cc and rc
        else:
            assert not rc and not cc

    @pytest.mark.parametrize("seed", range(6))
    def test_ra_two_session_reduction_iff(self, seed):
        graph = random_graph(7, 0.45, seed=seed)
        history = ra_two_session_reduction(graph)
        assert history.num_sessions == 2
        assert check(history, IsolationLevel.READ_ATOMIC).is_consistent == (
            not has_triangle(graph)
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_rc_single_session_reduction_iff(self, seed):
        graph = random_graph(7, 0.45, seed=seed)
        history = rc_single_session_reduction(graph)
        assert history.num_sessions == 1
        assert check(history, IsolationLevel.READ_COMMITTED).is_consistent == (
            not has_triangle(graph)
        )

    def test_reduction_size_is_linear_in_edges(self):
        graph = random_graph(10, 0.4, seed=1)
        history = general_reduction(graph)
        # Each edge contributes a constant number of operations (Section 4.1).
        assert history.num_operations <= 10 * graph.num_edges + 2 * graph.num_vertices

    def test_isolated_vertices_are_harmless(self):
        graph = UndirectedGraph(5, [(0, 1)])
        history = general_reduction(graph)
        assert check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
