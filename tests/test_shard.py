"""Tests for the sharded parallel checking engine (``repro.shard``).

The central contract mirrors the compiled engine's: for every ``jobs``
value, every execution mode, and every session-to-shard assignment, the
sharded engine is *byte-identical* to the single-process compiled engine --
same verdicts, violation kinds, witness renderings, and inferred-edge
counts -- including on histories with injected anomalies.  Hypothesis
enforces it below with randomized shard assignments.

The hypothesis bulk runs in ``mode="inline"`` (the full shard/merge
pipeline at function-call cost); a smaller explicit matrix runs
``mode="fork"`` to cover the process transport (fork, pickling, result
collection) itself.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import IsolationLevel, check, check_all_levels
from repro.core.compiled import CompiledHistoryBuilder, compile_history
from repro.histories.formats import load_compiled, save_history
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    inject_anomaly,
)
from repro.shard import (
    check_sharded,
    load_compiled_sharded,
    merge_shard_builders,
    plan_shards,
    shard_of_external,
    sharded_ingest,
)

LEVELS = list(IsolationLevel)
JOBS = (1, 2, 4)

history_configs = st.builds(
    RandomHistoryConfig,
    num_sessions=st.integers(1, 6),
    num_transactions=st.integers(0, 30),
    num_keys=st.integers(1, 6),
    min_ops_per_txn=st.just(1),
    max_ops_per_txn=st.integers(1, 6),
    read_fraction=st.floats(0.2, 0.8),
    abort_probability=st.sampled_from([0.0, 0.15]),
    mode=st.sampled_from(["serializable", "random_reads"]),
    seed=st.integers(0, 10_000),
)


def assert_sharded_identical(ch, level, jobs, session_shard=None, mode="inline"):
    """Sharded output is byte-identical to the compiled engine's."""
    compiled = check(ch, level, engine="compiled")
    sharded = check_sharded(
        ch, level, jobs=jobs, session_shard=session_shard, mode=mode
    )
    assert sharded.is_consistent == compiled.is_consistent, (level, jobs)
    assert [v.kind for v in sharded.violations] == [
        v.kind for v in compiled.violations
    ], (level, jobs)
    assert [v.describe() for v in sharded.violations] == [
        v.describe() for v in compiled.violations
    ], (level, jobs)
    assert sharded.checker == compiled.checker, (level, jobs)
    assert sharded.stats.get("inferred_edges") == compiled.stats.get(
        "inferred_edges"
    ), (level, jobs)
    assert sharded.stats.get("co_edges") == compiled.stats.get("co_edges"), (
        level,
        jobs,
    )
    return sharded


class TestShardPlan:
    def test_round_robin_default(self):
        plan = plan_shards(num_sessions=5, num_transactions=10, jobs=2)
        assert plan.session_shard == [0, 1, 0, 1, 0]
        assert plan.sessions_of(0) == [0, 2, 4]
        assert plan.sessions_of(1) == [1, 3]

    def test_tid_chunks_cover_range_contiguously(self):
        plan = plan_shards(num_sessions=3, num_transactions=11, jobs=4)
        assert plan.tid_chunks[0][0] == 0
        assert plan.tid_chunks[-1][1] == 11
        for (_lo, hi), (lo2, _hi2) in zip(plan.tid_chunks, plan.tid_chunks[1:]):
            assert hi == lo2
        assert sum(hi - lo for lo, hi in plan.tid_chunks) == 11

    def test_explicit_assignment_validated(self):
        with pytest.raises(ValueError):
            plan_shards(2, 4, jobs=2, session_shard=[0, 5])
        with pytest.raises(ValueError):
            plan_shards(2, 4, jobs=2, session_shard=[0])
        with pytest.raises(ValueError):
            plan_shards(2, 4, jobs=0)

    def test_external_shard_hash_is_stable_and_in_range(self):
        for sid in (0, 1, 17, "client-3", ("node", 2)):
            shard = shard_of_external(sid, 4)
            assert 0 <= shard < 4
            assert shard == shard_of_external(sid, 4)


class TestBuilderAbsorb:
    def test_absorb_remaps_intern_ids(self):
        a = CompiledHistoryBuilder()
        a.add_transaction(0, "a0", True, [(True, "x", 1), (True, "y", 2)])
        b = CompiledHistoryBuilder()
        # Interns y before x: ids differ per shard and must be remapped.
        b.add_transaction(1, "b0", True, [(True, "y", 3), (False, "x", 1)])
        a.absorb(b)
        ch = a.finalize()
        assert ch.num_sessions == 2
        assert ch.num_keys == 2
        # The read of x=1 resolves to session 0's write across the merge.
        read_index = next(
            i for i in range(ch.num_operations) if not ch.op_kind[i]
        )
        assert ch.op_wr[read_index] >= 0
        assert ch.key_table.values[ch.op_key[read_index]] == "x"

    def test_absorb_appends_to_existing_session(self):
        a = CompiledHistoryBuilder()
        a.add_transaction(0, "first", True, [(True, "x", 1)])
        b = CompiledHistoryBuilder()
        b.add_transaction(0, "second", True, [(True, "x", 2)])
        a.absorb(b)
        ch = a.finalize()
        assert ch.num_sessions == 1
        assert ch.sessions == [[0, 1]]
        assert ch.labels == {0: "first", 1: "second"}

    def test_merge_of_no_builders_yields_empty_history(self):
        ch = merge_shard_builders([])
        assert ch.num_transactions == 0
        assert ch.num_sessions == 0


class TestShardedIngest:
    @pytest.mark.parametrize(
        "fmt,ext",
        [("native", ".json"), ("plume", ".plume"), ("dbcop", ".dbcop"), ("cobra", ".cobra")],
    )
    def test_sharded_ingest_matches_load_compiled(self, tmp_path, fmt, ext):
        history = generate_random_history(
            RandomHistoryConfig(
                num_sessions=5, num_transactions=40, num_keys=5, seed=13,
                abort_probability=0.1, mode="random_reads",
            )
        )
        path = tmp_path / f"h{ext}"
        save_history(history, str(path), fmt=fmt)
        single = load_compiled(str(path), fmt=fmt)
        for jobs in JOBS:
            sharded = load_compiled_sharded(str(path), jobs, fmt=fmt)
            assert sharded.num_transactions == single.num_transactions
            assert sharded.num_sessions == single.num_sessions
            assert sharded.num_keys == single.num_keys
            assert sharded.num_values == single.num_values
            # Dense renumbering is identical after the sorted merge.
            assert sharded.sessions == single.sessions
            assert list(sharded.txn_start) == list(single.txn_start)
            for level in LEVELS:
                a = check(sharded, level)
                b = check(single, level)
                assert a.is_consistent == b.is_consistent
                assert [v.describe() for v in a.violations] == [
                    v.describe() for v in b.violations
                ]

    def test_parallel_ingest_matches_single_parse(self, tmp_path):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=6, num_transactions=60, seed=5)
        )
        path = tmp_path / "h.plume"
        save_history(history, str(path), fmt="plume")
        # Byte-range parallel ingestion parses each region once and absorbs
        # the regions in file order, so the merged IR matches load_compiled
        # bit for bit (intern ids included -- file-order first-seen).
        single = load_compiled(str(path), fmt="plume")
        forked = load_compiled_sharded(str(path), 3, fmt="plume", parallel=True)
        assert list(forked.op_key) == list(single.op_key)
        assert list(forked.op_wr) == list(single.op_wr)
        assert forked.sessions == single.sessions
        assert forked.key_table.values == single.key_table.values
        # Routed mode interns shard-major; results are still identical.
        routed = load_compiled_sharded(str(path), 3, fmt="plume")
        for level in LEVELS:
            a, b = check(forked, level), check(routed, level)
            assert a.is_consistent == b.is_consistent
            assert [v.describe() for v in a.violations] == [
                v.describe() for v in b.violations
            ]

    def test_parallel_ingest_json_fallback_matches_routed(self, tmp_path):
        # The JSON formats have no line-level record boundaries, so the
        # parallel path falls back to the replicated session-filter parse,
        # which reproduces routed mode's shard-major intern order exactly.
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=6, num_transactions=60, seed=5)
        )
        path = tmp_path / "h.json"
        save_history(history, str(path))
        routed = load_compiled_sharded(str(path), 3, fmt="native")
        forked = load_compiled_sharded(str(path), 3, fmt="native", parallel=True)
        assert list(forked.op_key) == list(routed.op_key)
        assert list(forked.op_wr) == list(routed.op_wr)
        assert forked.sessions == routed.sessions
        assert forked.key_table.values == routed.key_table.values

    def test_ingest_stats_report_premerge_cardinalities(self, tmp_path):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=4, num_transactions=30, seed=2)
        )
        path = tmp_path / "h.json"
        save_history(history, str(path))
        compiled, stats = sharded_ingest(str(path), 2, fmt="native")
        assert len(stats) == 2
        assert sum(s.transactions for s in stats) == compiled.num_transactions
        assert sum(s.sessions for s in stats) == compiled.num_sessions
        # Shards intern independently, so per-shard keys sum to >= merged.
        assert sum(s.keys for s in stats) >= compiled.num_keys

    def test_jobs_validation(self, tmp_path):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=2, num_transactions=5, seed=1)
        )
        path = tmp_path / "h.json"
        save_history(history, str(path))
        with pytest.raises(ValueError):
            sharded_ingest(str(path), 0)


class TestDispatch:
    def test_check_engine_sharded(self):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=3, num_transactions=20, seed=4)
        )
        compiled = check(history, IsolationLevel.CAUSAL_CONSISTENCY)
        sharded = check(
            history, IsolationLevel.CAUSAL_CONSISTENCY, engine="sharded", jobs=2
        )
        assert sharded.is_consistent == compiled.is_consistent
        assert [v.describe() for v in sharded.violations] == [
            v.describe() for v in compiled.violations
        ]

    def test_jobs_implies_sharded_engine(self):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=3, num_transactions=20, seed=4)
        )
        result = check(history, IsolationLevel.READ_COMMITTED, jobs=2)
        assert "jobs" in result.stats

    def test_jobs_rejected_for_single_process_engines(self):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=2, num_transactions=5, seed=1)
        )
        with pytest.raises(ValueError, match="sharded"):
            check(history, engine="compiled", jobs=2)
        with pytest.raises(ValueError, match="sharded"):
            check(history, engine="object", jobs=2)
        with pytest.raises(ValueError, match="sharded"):
            check_all_levels(history, engine="object", jobs=2)

    def test_invalid_jobs_and_mode_rejected(self):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=2, num_transactions=5, seed=1)
        )
        ch = compile_history(history)
        with pytest.raises(ValueError):
            check_sharded(ch, jobs=0)
        with pytest.raises(ValueError):
            check_sharded(ch, jobs=2, mode="warp")

    def test_check_all_levels_sharded(self):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=3, num_transactions=25, seed=9)
        )
        sharded = check_all_levels(history, engine="sharded", jobs=2)
        compiled = check_all_levels(history, engine="compiled")
        for level in LEVELS:
            assert sharded[level].is_consistent == compiled[level].is_consistent
            assert [v.describe() for v in sharded[level].violations] == [
                v.describe() for v in compiled[level].violations
            ]

    def test_inline_check_releases_worker_caches(self):
        from repro.shard import parallel

        history = generate_random_history(
            RandomHistoryConfig(num_sessions=3, num_transactions=20, seed=6)
        )
        ch = compile_history(history)
        check_sharded(ch, IsolationLevel.CAUSAL_CONSISTENCY, jobs=2, mode="inline")
        # The per-process writers cache (and the shared IR global) must not
        # pin the history after the check returns.
        assert parallel._WRITERS_CACHE is None
        assert parallel._SHARED_CH is None

    def test_will_parallelize_modes(self):
        from repro.shard import will_parallelize

        assert will_parallelize(1) is False
        assert will_parallelize(2, mode="serial") is False
        assert will_parallelize(2, mode="inline") is False

    def test_single_session_ra_fast_path_is_delegated(self):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=1, num_transactions=15, seed=3)
        )
        ch = compile_history(history)
        sharded = check_sharded(ch, IsolationLevel.READ_ATOMIC, jobs=4)
        compiled = check(ch, IsolationLevel.READ_ATOMIC)
        assert sharded.checker == compiled.checker == "awdit-1session"


class TestForkTransport:
    """The forked worker pool reproduces inline results exactly."""

    @pytest.mark.parametrize("level", LEVELS, ids=[l.short_name for l in LEVELS])
    def test_forked_matches_compiled_on_anomalous_history(self, level):
        history = generate_random_history(
            RandomHistoryConfig(
                num_sessions=5, num_transactions=40, num_keys=5, seed=21,
                mode="random_reads", abort_probability=0.1,
            )
        )
        for kind in INJECTABLE_ANOMALIES[:3]:
            history = inject_anomaly(history, kind)
        ch = compile_history(history)
        assert_sharded_identical(ch, level, jobs=3, mode="fork")

    def test_forked_consistent_history(self):
        history = generate_random_history(
            RandomHistoryConfig(num_sessions=4, num_transactions=60, seed=22)
        )
        ch = compile_history(history)
        result = assert_sharded_identical(
            ch, IsolationLevel.CAUSAL_CONSISTENCY, jobs=2, mode="fork"
        )
        assert result.is_consistent
        assert result.stats["jobs"] == 2


class TestHypothesisParity:
    """The acceptance property: sharded == compiled for jobs in {1, 2, 4}
    under randomized shard assignment, including injected anomalies."""

    @settings(
        max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        config=history_configs,
        level=st.sampled_from(LEVELS),
        jobs=st.sampled_from(JOBS),
        assignment_seed=st.integers(0, 1_000),
    )
    def test_sharded_matches_compiled_on_random_histories(
        self, config, level, jobs, assignment_seed
    ):
        ch = compile_history(generate_random_history(config))
        rng = random.Random(assignment_seed)
        assignment = [rng.randrange(jobs) for _ in range(ch.num_sessions)]
        assert_sharded_identical(ch, level, jobs, session_shard=assignment)

    @settings(
        max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(
        config=history_configs,
        kind=st.sampled_from(INJECTABLE_ANOMALIES),
        level=st.sampled_from(LEVELS),
        jobs=st.sampled_from(JOBS),
        assignment_seed=st.integers(0, 1_000),
    )
    def test_sharded_matches_compiled_with_injected_anomalies(
        self, config, kind, level, jobs, assignment_seed
    ):
        history = inject_anomaly(generate_random_history(config), kind)
        ch = compile_history(history)
        rng = random.Random(assignment_seed)
        assignment = [rng.randrange(jobs) for _ in range(ch.num_sessions)]
        assert_sharded_identical(ch, level, jobs, session_shard=assignment)

    @settings(
        max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
    )
    @given(config=history_configs, jobs=st.sampled_from((2, 4)))
    def test_sharded_ingest_then_check_matches_single_pipeline(
        self, config, jobs, tmp_path_factory
    ):
        """File -> sharded ingest -> sharded check == file -> compiled."""
        history = generate_random_history(config)
        if history.num_transactions == 0:
            return
        path = tmp_path_factory.mktemp("shard") / "h.plume"
        save_history(history, str(path), fmt="plume")
        single = load_compiled(str(path), fmt="plume")
        sharded_ch = load_compiled_sharded(str(path), jobs, fmt="plume")
        for level in LEVELS:
            a = check_sharded(sharded_ch, level, jobs=jobs, mode="inline")
            b = check(single, level)
            assert a.is_consistent == b.is_consistent, level
            assert [v.describe() for v in a.violations] == [
                v.describe() for v in b.violations
            ], level
