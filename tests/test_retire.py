"""Tests for watermark-based retirement (repro.core.compiled.retire).

The contract under test: with ``--retire`` the streaming checkers either
produce output byte-identical to a non-retiring run (verdicts, witness
messages, inferred-edge counts), or refuse with
:class:`RetiredAccessError` when the history genuinely needed evicted
state -- never a silently different answer.
"""

import os
import pickle
import random
import subprocess
import sys

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from helpers import make_legacy_checker_state
from repro.core import IsolationLevel
from repro.core.compiled import online
from repro.core.compiled.retire import (
    RetiredAccessError,
    RetirementPolicy,
    low_watermark,
    stable_digest,
)
from repro.core.model import History, Transaction, read, write
from repro.histories.generator import (
    INJECTABLE_ANOMALIES,
    RandomHistoryConfig,
    generate_random_history,
    generate_random_stream,
    inject_anomaly,
)
from repro.stream import (
    CompiledIncrementalChecker,
    IncrementalChecker,
    check_stream_file,
    load_checkpoint,
)

LEVELS = list(IsolationLevel)

#: Retire as hard as the policy allows: every transaction past the fold is
#: a candidate on every append.
AGGRESSIVE = RetirementPolicy(lag=0, every=1)


def raw_of(txn):
    return (
        txn.label,
        txn.committed,
        [(op.is_write, op.key, op.value) for op in txn.operations],
    )


def arrival_records(history, order):
    """``(session, transaction)`` pairs of ``history`` in ``order``."""
    sid_of = [0] * len(history.transactions)
    for sid, session in enumerate(history.sessions):
        for tid in session:
            sid_of[tid] = sid
    for tid in order:
        yield sid_of[tid], history.transactions[tid]


def interleaved_order(history, seed=0):
    """A random arrival order that respects per-session order."""
    rng = random.Random(seed)
    positions = [0] * history.num_sessions
    order = []
    live = [sid for sid in range(history.num_sessions) if history.sessions[sid]]
    while live:
        sid = rng.choice(live)
        order.append(history.sessions[sid][positions[sid]])
        positions[sid] += 1
        if positions[sid] == len(history.sessions[sid]):
            live.remove(sid)
    return order


def run_compiled(history, order, retire=None):
    checker = CompiledIncrementalChecker(
        num_sessions=history.num_sessions, retire=retire
    )
    for sid, txn in arrival_records(history, order):
        checker.append_raw(sid, *raw_of(txn))
    return checker.finalize(), checker


def run_object(history, order, retire=None):
    checker = IncrementalChecker(num_sessions=history.num_sessions, retire=retire)
    for sid, txn in arrival_records(history, order):
        checker.append(sid, txn)
    return checker.finalize(), checker


def assert_identical(got, want):
    for level in LEVELS:
        assert got[level].is_consistent == want[level].is_consistent, level
        assert [v.message for v in got[level].violations] == [
            v.message for v in want[level].violations
        ], level
        assert got[level].stats.get("inferred_edges") == want[level].stats.get(
            "inferred_edges"
        ), level


def single_session_history(prefix_ops, fillers, suffix_ops):
    """One session: ``prefix_ops`` txns, ``fillers`` fresh-key writers, ``suffix_ops``.

    Single-session histories are the sharpest retirement stress: the
    session's own clock is the whole watermark, so everything past the lag
    retires (multi-session watermarks wait for cross-session reads).
    """
    txns = [Transaction(ops) for ops in prefix_ops]
    txns.extend(
        Transaction([write(f"filler{i}", i + 1)]) for i in range(fillers)
    )
    txns.extend(Transaction(ops) for ops in suffix_ops)
    return History.from_sessions([txns])


class TestRetireParity:
    @pytest.mark.parametrize("kind", INJECTABLE_ANOMALIES, ids=lambda k: k.name)
    def test_injected_anomalies_both_engines(self, kind):
        """At every lag, both engines refuse together or match the oracle.

        Small lags may legitimately refuse (a read in the random
        interleaving reaches past the watermark); the scan asserts the
        refusal is policy-monotone enough to find a workable lag, and that
        the first workable one reproduces the non-retiring answer exactly.
        """
        base = generate_random_history(
            RandomHistoryConfig(num_sessions=3, num_transactions=30, seed=5)
        )
        history = inject_anomaly(base, kind)
        order = interleaved_order(history, seed=7)
        want, _ = run_compiled(history, order)
        matched = False
        for lag in (0, 4, 16, len(history.transactions)):
            policy = RetirementPolicy(lag=lag, every=1)
            try:
                got_c, _ = run_compiled(history, order, retire=policy)
            except RetiredAccessError:
                got_c = None
            try:
                got_o, _ = run_object(history, order, retire=policy)
            except RetiredAccessError:
                got_o = None
            assert (got_c is None) == (got_o is None), lag
            if got_c is not None:
                assert_identical(got_c, want)
                assert_identical(got_o, want)
                matched = True
        # The widest lag keeps every read inside the resident window.
        assert matched

    def test_arrival_stream_parity_both_engines(self):
        history, order = generate_random_stream(
            RandomHistoryConfig(
                num_sessions=6,
                num_transactions=600,
                num_keys=30,
                abort_probability=0.05,
                seed=13,
            )
        )
        policy = RetirementPolicy(lag=64, every=16)
        want, _ = run_compiled(history, order)
        got_c, checker_c = run_compiled(history, order, retire=policy)
        got_o, checker_o = run_object(history, order, retire=policy)
        assert_identical(got_c, want)
        assert_identical(got_o, want)
        # The arrival order keeps the fold drained, so both engines really
        # did retire most of the stream (not a vacuous pass).
        assert checker_c._retire_stats.retired_transactions > 300
        assert checker_o._retire_stats.retired_transactions > 300

    def test_inconsistent_stream_parity(self):
        history, order = generate_random_stream(
            RandomHistoryConfig(
                num_sessions=4,
                num_transactions=150,
                num_keys=12,
                mode="random_reads",
                seed=21,
            )
        )
        want, _ = run_compiled(history, order)
        # random_reads histories reach arbitrarily far back, so retirement
        # under a tight lag refuses; scan up to a lag that works and pin
        # byte-identity there.
        matched = False
        for lag in (16, 64, len(history.transactions)):
            policy = RetirementPolicy(lag=lag, every=4)
            try:
                got_c, _ = run_compiled(history, order, retire=policy)
            except RetiredAccessError:
                got_c = None
            try:
                got_o, _ = run_object(history, order, retire=policy)
            except RetiredAccessError:
                got_o = None
            assert (got_c is None) == (got_o is None), lag
            if got_c is not None:
                assert_identical(got_c, want)
                assert_identical(got_o, want)
                matched = True
        assert matched

    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        seed=st.integers(0, 10_000),
        sessions=st.integers(1, 5),
        txns=st.integers(10, 120),
        keys=st.integers(2, 15),
        lag=st.integers(0, 64),
        every=st.integers(1, 32),
        mode=st.sampled_from(["serializable", "random_reads"]),
    )
    def test_retiring_run_is_identical_or_refuses(
        self, seed, sessions, txns, keys, lag, every, mode
    ):
        history, order = generate_random_stream(
            RandomHistoryConfig(
                num_sessions=sessions,
                num_transactions=txns,
                num_keys=keys,
                abort_probability=0.05,
                mode=mode,
                seed=seed,
            )
        )
        want, _ = run_compiled(history, order)
        policy = RetirementPolicy(lag=lag, every=every)
        try:
            got_c, _ = run_compiled(history, order, retire=policy)
        except RetiredAccessError:
            got_c = None
        try:
            got_o, _ = run_object(history, order, retire=policy)
        except RetiredAccessError:
            got_o = None
        # The two engines must agree on whether the policy was too tight.
        assert (got_c is None) == (got_o is None)
        if got_c is not None:
            assert_identical(got_c, want)
            assert_identical(got_o, want)


class TestRetireRefusal:
    def test_read_of_evicted_write_refuses(self):
        # W(x,1) is superseded by W(x,2), loses its latest-writer pin,
        # retires under the fillers, and the final R(x,1) can no longer be
        # classified: the check must refuse, not guess.
        history = single_session_history(
            [[write("x", 1)], [write("x", 2)]], 400, [[read("x", 1)]]
        )
        order = list(range(len(history.transactions)))
        policy = RetirementPolicy(lag=32, every=8)
        for run in (run_compiled, run_object):
            with pytest.raises(RetiredAccessError):
                run(history, order, retire=policy)

    def test_write_identity_reuse_refuses(self):
        # A later write re-mints the evicted (x, 1) identity; reads of it
        # would be ambiguous between the two writers, so the check refuses.
        history = single_session_history(
            [[write("x", 1)], [write("x", 2)]], 400, [[write("x", 1)]]
        )
        order = list(range(len(history.transactions)))
        policy = RetirementPolicy(lag=32, every=8)
        for run in (run_compiled, run_object):
            with pytest.raises(RetiredAccessError):
                run(history, order, retire=policy)

    def test_generous_lag_keeps_the_same_history_checkable(self):
        # The refusal above is the policy's fault, not the history's: with
        # the lag wider than the read's reach the run completes identically.
        history = single_session_history(
            [[write("x", 1)], [write("x", 2)]], 400, [[read("x", 1)]]
        )
        order = list(range(len(history.transactions)))
        want, _ = run_compiled(history, order)
        got, _ = run_compiled(
            history, order, retire=RetirementPolicy(lag=500, every=8)
        )
        assert_identical(got, want)


class TestRetireMemoryBounded:
    def test_resident_state_stays_bounded(self):
        history, order = generate_random_stream(
            RandomHistoryConfig(
                num_sessions=4, num_transactions=4000, num_keys=40, seed=3
            )
        )
        policy = RetirementPolicy(lag=128, every=32)
        checker = CompiledIncrementalChecker(
            num_sessions=history.num_sessions, retire=policy
        )
        peak_resident = 0
        for sid, txn in arrival_records(history, order):
            checker.append_raw(sid, *raw_of(txn))
            peak_resident = max(peak_resident, len(checker._t_sid))
        # Live state is O(lag + cadence + pinned writers), not O(history).
        bound = policy.lag + policy.every + 40 + 4 * history.num_sessions
        assert peak_resident <= bound
        stats = checker.live_stats()
        assert stats["retired_transactions"] >= 4000 - bound
        assert stats["post_compaction_peak_resident"] <= bound
        assert_identical(checker.finalize(), run_compiled(history, order)[0])

    def test_object_checker_resident_state_stays_bounded(self):
        history, order = generate_random_stream(
            RandomHistoryConfig(
                num_sessions=4, num_transactions=2000, num_keys=40, seed=3
            )
        )
        policy = RetirementPolicy(lag=128, every=32)
        checker = IncrementalChecker(
            num_sessions=history.num_sessions, retire=policy
        )
        peak_resident = 0
        for sid, txn in arrival_records(history, order):
            checker.append(sid, txn)
            peak_resident = max(peak_resident, len(checker._txns))
        bound = policy.lag + policy.every + 40 + 4 * history.num_sessions
        assert peak_resident <= bound
        assert checker._retire_stats.retired_transactions >= 2000 - bound

    def test_non_retiring_checker_keeps_everything(self):
        history, order = generate_random_stream(
            RandomHistoryConfig(num_sessions=4, num_transactions=500, seed=3)
        )
        _, checker = run_compiled(history, order)
        assert checker.live_stats()["retired_transactions"] == 0


def _downgrade_checkpoint_to_v4(path):
    """Rewrite a current checkpoint file as the pre-retirement v4 layout."""
    with open(path, "rb") as handle:
        magic = handle.read(len(online.CHECKPOINT_MAGIC))
        version = handle.read(1)
        payload = pickle.load(handle)
    assert magic == online.CHECKPOINT_MAGIC and version[0] == online.CHECKPOINT_VERSION
    checker = payload["checker"]
    assert checker._txns_base == 0, "cannot downgrade a retired checker"
    # v4 predates the columnar state too: pickle the object-heap form.
    make_legacy_checker_state(checker)
    for attr in (
        "_next_tid",
        "_txns_base",
        "_sess_base",
        "_latest_writer",
        "_retire",
        "_retire_stats",
        "_segments",
        "_retire_last",
        "_retired_final",
    ):
        checker.__dict__.pop(attr, None)
    with open(path, "wb") as handle:
        handle.write(online.CHECKPOINT_MAGIC)
        handle.write(bytes([4]))
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)


class TestCheckpointAcrossRetirement:
    def _stream(self, txns=800):
        return generate_random_stream(
            RandomHistoryConfig(
                num_sessions=4,
                num_transactions=txns,
                num_keys=40,
                abort_probability=0.02,
                seed=17,
            )
        )

    def test_resume_straddles_a_compaction(self, tmp_path):
        history, order = self._stream()
        want, _ = run_compiled(history, order)
        policy = RetirementPolicy(
            lag=192, every=16, segment_dir=str(tmp_path / "segs")
        )
        records = list(arrival_records(history, order))
        half = CompiledIncrementalChecker(
            num_sessions=history.num_sessions, retire=policy
        )
        for sid, txn in records[:500]:
            half.append_raw(sid, *raw_of(txn))
        # The checkpoint must straddle real evictions, or this test is void.
        assert half.live_stats()["retire_passes"] > 0
        assert half._txns_base > 0
        path = tmp_path / "state.awd"
        half.save_checkpoint(str(path))

        resumed = load_checkpoint(str(path))
        assert resumed.num_transactions == 500
        resumed.enable_retirement(policy)
        for sid, txn in records[500:]:
            resumed.append_raw(sid, *raw_of(txn))
        assert_identical(resumed.finalize(), want)

    def test_v4_checkpoint_resumes_with_retirement_disabled(self, tmp_path):
        history, order = self._stream(txns=200)
        want, _ = run_compiled(history, order)
        records = list(arrival_records(history, order))
        half = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        for sid, txn in records[:120]:
            half.append_raw(sid, *raw_of(txn))
        path = tmp_path / "state.awd"
        half.save_checkpoint(str(path))
        _downgrade_checkpoint_to_v4(str(path))

        resumed = load_checkpoint(str(path))
        assert resumed.num_transactions == 120
        assert resumed._retire is None
        assert resumed.live_stats()["retire_enabled"] == 0
        for sid, txn in records[120:]:
            resumed.append_raw(sid, *raw_of(txn))
        assert_identical(resumed.finalize(), want)

    def test_v4_resume_can_enable_retirement(self, tmp_path):
        history, order = self._stream()
        want, _ = run_compiled(history, order)
        records = list(arrival_records(history, order))
        half = CompiledIncrementalChecker(num_sessions=history.num_sessions)
        for sid, txn in records[:400]:
            half.append_raw(sid, *raw_of(txn))
        path = tmp_path / "state.awd"
        half.save_checkpoint(str(path))
        _downgrade_checkpoint_to_v4(str(path))

        resumed = load_checkpoint(str(path))
        resumed.enable_retirement(RetirementPolicy(lag=128, every=16))
        for sid, txn in records[400:]:
            resumed.append_raw(sid, *raw_of(txn))
        assert_identical(resumed.finalize(), want)
        assert resumed._retire_stats.retired_transactions > 0

    def test_check_stream_file_resume_with_retire(self, tmp_path):
        from repro.histories.formats import plume_text

        history, order = self._stream(txns=300)
        path = tmp_path / "h.plume"
        path.write_text(plume_text.dumps(history, order=order))
        state = tmp_path / "state.awd"
        policy = RetirementPolicy(
            lag=128, every=16, segment_dir=str(tmp_path / "segs")
        )
        want = check_stream_file(
            str(path), IsolationLevel.CAUSAL_CONSISTENCY, fmt="plume"
        )
        first = check_stream_file(
            str(path),
            IsolationLevel.CAUSAL_CONSISTENCY,
            fmt="plume",
            checkpoint=str(state),
            retire=policy,
        )
        resumed = check_stream_file(
            str(path),
            IsolationLevel.CAUSAL_CONSISTENCY,
            fmt="plume",
            checkpoint=str(state),
            resume=True,
            retire=policy,
        )
        for got in (first, resumed):
            assert got.is_consistent == want.is_consistent
            assert [v.message for v in got.violations] == [
                v.message for v in want.violations
            ]


class TestRetireHelpers:
    def test_low_watermark_takes_the_component_minimum(self):
        clocks = [[3, 7, 2], [5, 4, 9], [4, 6, 2]]
        assert low_watermark(clocks, 3) == [3, 4, 2]

    def test_low_watermark_treats_short_clocks_as_unseen(self):
        # A session that has never joined another's clock holds it at -1,
        # which pins that session's watermark below every transaction.
        assert low_watermark([[2, 5], [1]], 2) == [1, -1]

    def test_stable_digest_distinguishes_key_value_splits(self):
        assert stable_digest("x", 1) == stable_digest("x", 1)
        assert stable_digest("x", 12) != stable_digest("x1", 2)
        assert stable_digest("x", "1") != stable_digest("x", 1)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetirementPolicy(lag=-1)
        with pytest.raises(ValueError):
            RetirementPolicy(every=0)


class TestFallbackParity:
    def test_no_numpy_retiring_run_matches(self, tmp_path):
        """AWDIT_NO_NUMPY=1 retires through the pure-Python kernels identically."""
        from repro.histories.formats import plume_text

        history, order = generate_random_stream(
            RandomHistoryConfig(
                num_sessions=4,
                num_transactions=300,
                num_keys=20,
                mode="random_reads",
                seed=29,
            )
        )
        path = tmp_path / "h.plume"
        path.write_text(plume_text.dumps(history, order=order))
        want, _ = run_compiled(history, order)
        # The fallback acyclicity kernel may start a cycle witness at a
        # different (equivalent) rotation than numpy, so the byte-identity
        # oracle for the fallback retiring run is the fallback non-retiring
        # run in the same process; the verdict and violation count are
        # still pinned against the numpy run.
        script = (
            "import sys\n"
            "from repro.core import IsolationLevel\n"
            "from repro.core.compiled import online\n"
            "assert online._np is None\n"
            "from repro.core.compiled.retire import RetirementPolicy\n"
            "from repro.stream import check_stream_file\n"
            "plain = check_stream_file(sys.argv[1], IsolationLevel.CAUSAL_CONSISTENCY,\n"
            "    fmt='plume')\n"
            "retiring = check_stream_file(sys.argv[1], IsolationLevel.CAUSAL_CONSISTENCY,\n"
            "    fmt='plume', retire=RetirementPolicy(lag=32, every=8))\n"
            "assert retiring.is_consistent == plain.is_consistent\n"
            "assert [v.message for v in retiring.violations] == \\\n"
            "    [v.message for v in plain.violations]\n"
            "print(int(retiring.is_consistent), len(retiring.violations))\n"
        )
        env = dict(os.environ)
        env["AWDIT_NO_NUMPY"] = "1"
        proc = subprocess.run(
            [sys.executable, "-c", script, str(path)],
            env=env,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stderr
        level = IsolationLevel.CAUSAL_CONSISTENCY
        assert proc.stdout.strip() == (
            f"{int(want[level].is_consistent)} {len(want[level].violations)}"
        )
