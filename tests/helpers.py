"""Shared test helpers: the paper's example histories and small utilities."""

from __future__ import annotations

from typing import Dict

from repro.core.model import History, Transaction, read, write


def fig_1a() -> History:
    """Fig. 1a: the RC-inconsistent motivating history."""
    t1 = Transaction([write("x", 1), write("y", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([write("x", 3)], label="t3")
    t4 = Transaction([write("z", 1), write("y", 2)], label="t4")
    t5 = Transaction([read("x", 1), read("x", 2), read("x", 3)], label="t5")
    t6 = Transaction([read("z", 1), read("y", 1)], label="t6")
    return History.from_sessions([[t1], [t2], [t3, t4], [t5, t6]])


def fig_1b() -> History:
    """Fig. 1b: the CC-inconsistent motivating history."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([write("y", 1), read("z", 2)], label="t3")
    t4 = Transaction([write("x", 3)], label="t4")
    t5 = Transaction([write("z", 1)], label="t5")
    t6 = Transaction([write("x", 4), read("z", 1), write("z", 2)], label="t6")
    t7 = Transaction([read("x", 3), read("y", 1)], label="t7")
    return History.from_sessions([[t1, t2, t3], [t4, t5], [t6], [t7]])


def fig_4a() -> History:
    """Fig. 4a: Read Consistent but RC-inconsistent."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([read("x", 2), read("x", 1)], label="t3")
    return History.from_sessions([[t1, t2], [t3]])


def fig_4b() -> History:
    """Fig. 4b: RC-consistent but RA-inconsistent."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
    t3 = Transaction([read("x", 1), read("y", 2)], label="t3")
    return History.from_sessions([[t1, t2], [t3]])


def fig_4c() -> History:
    """Fig. 4c: RA-consistent but CC-inconsistent."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([read("x", 2), write("y", 3)], label="t3")
    t4 = Transaction([read("y", 3), read("x", 1)], label="t4")
    return History.from_sessions([[t1, t2], [t3], [t4]])


def fig_4d() -> History:
    """Fig. 4d: CC-consistent (but not serializable)."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([read("x", 1), write("x", 2)], label="t2")
    t3 = Transaction([read("x", 2)], label="t3")
    t4 = Transaction([read("x", 1), write("x", 3)], label="t4")
    t5 = Transaction([read("x", 3)], label="t5")
    return History.from_sessions([[t1], [t2, t3], [t4, t5]])


def all_paper_histories() -> Dict[str, History]:
    """All named example histories keyed by figure name."""
    return {
        "fig_1a": fig_1a(),
        "fig_1b": fig_1b(),
        "fig_4a": fig_4a(),
        "fig_4b": fig_4b(),
        "fig_4c": fig_4c(),
        "fig_4d": fig_4d(),
    }


#: Expected consistency verdicts (RC, RA, CC) for each paper history.
PAPER_VERDICTS = {
    "fig_1a": (False, False, False),
    "fig_1b": (True, True, False),
    "fig_4a": (False, False, False),
    "fig_4b": (True, False, False),
    "fig_4c": (True, True, False),
    "fig_4d": (True, True, True),
}


def make_legacy_checker_state(checker) -> None:
    """Rewrite a columnar ``CompiledIncrementalChecker``'s ``__dict__`` into
    the v4/v5 object-heap layout, in place.

    The inverse of ``_migrate_legacy_state``: columns become ``_Txn``
    records, the park queue becomes ``(rec, read)`` lists, and the flat
    clock matrices become ragged clock lists plus the ``_hb`` dict.  The
    mutated checker is only good for pickling -- cross-version resume
    tests pickle it, reload, and let ``__setstate__`` migrate it back.
    """
    from repro.core.compiled.online import _Txn

    d = checker.__dict__
    tbase = d["_txns_base"]
    t_sid = d.pop("_t_sid")
    t_sidx = d.pop("_t_sidx")
    t_flags = d.pop("_t_flags")
    t_unres = d.pop("_t_unres")
    t_ccpend = d.pop("_t_ccpend")
    t_slow = d.pop("_t_slow")
    t_labels = d.pop("_t_labels")
    fw_off = d.pop("_fw_off")
    fw_kid = d.pop("_fw_kid")
    wany_start = d.pop("_wr_any_start")
    wany_len = d.pop("_wr_any_len")
    wany_writer = d.pop("_wr_any_writer")
    wany_kid = d.pop("_wr_any_kid")
    wgood_start = d.pop("_wr_good_start")
    wgood_len = d.pop("_wr_good_len")
    wgood_writer = d.pop("_wr_good_writer")
    wgood_kid = d.pop("_wr_good_kid")
    gr_start = d.pop("_gr_start")
    gr_len = d.pop("_gr_len")
    gr_index = d.pop("_gr_index")
    gr_kid = d.pop("_gr_kid")
    gr_writer = d.pop("_gr_writer")
    live_reads = d.pop("_live_reads")
    d.pop("_prefold")
    txns = []
    for j in range(len(t_sid)):
        tid = tbase + j
        flags = t_flags[j]
        rec = _Txn(tid, t_sid[j], t_sidx[j], bool(flags & 1), t_labels[j])
        rec.resolved = bool(flags & 2)
        rec.cc_done = bool(flags & 4)
        rec.cc_registered = bool(flags & 8)
        rec.unresolved = t_unres[j]
        rec.cc_pending = t_ccpend[j]
        rec.slow_reads = t_slow[j]
        kids = tuple(fw_kid[fw_off[j] : fw_off[j + 1]])
        rec.keys_written_ordered = kids
        rec.keys_written = frozenset(kids)
        ga = gr_start[j]
        gn = gr_len[j]
        a = wany_start[j]
        if a == -2:
            # Derive sentinel: the first-read-per-writer map comes from the
            # good-read run, exactly as the checker derives it at finalize.
            wr_any = {}
            for g in range(ga, ga + gn):
                w = gr_writer[g]
                if w not in wr_any:
                    wr_any[w] = gr_kid[g]
            rec.wr_first_any = wr_any
        elif a >= 0:
            rec.wr_first_any = {
                wany_writer[i]: wany_kid[i] for i in range(a, a + wany_len[j])
            }
        gs = wgood_start[j]
        if gs < 0:
            rec.wr_first_good = dict(rec.wr_first_any)
        else:
            rec.wr_first_good = {
                wgood_writer[i]: wgood_kid[i] for i in range(gs, gs + wgood_len[j])
            }
        rec.good_reads = [
            (gr_index[g], gr_kid[g], gr_writer[g]) for g in range(ga, ga + gn)
        ]
        rec.reads = live_reads.get(tid, [])
        txns.append(rec)
    d["_txns"] = txns
    d["_by_session"] = [
        [txns[tid - tbase] for tid in session] for session in d["_by_session"]
    ]

    def _trim(row):
        row = list(row)
        while row and row[-1] == -1:
            row.pop()
        return row

    stride = d.pop("_clock_stride")
    d.pop("_hb_pad")
    sc_data = d.pop("_sc_data")
    d["_session_clock"] = [
        _trim(sc_data[s * stride : (s + 1) * stride])
        for s in range(len(d["_by_session"]))
    ]
    hb_data = d.pop("_hb_data")
    hb = {}
    for j, rec in enumerate(txns):
        if rec.cc_done:
            hb[rec.tid] = _trim(hb_data[j * stride : (j + 1) * stride])
    d["_hb"] = hb
    pending = {}
    for wid, row in d.pop("_pending").items():
        plist = []
        for p in range(0, len(row), 2):
            rec = txns[row[p] - tbase]
            slot = row[p + 1]
            assert slot >= 0, "clean-parked reads never survive their batch"
            plist.append((rec, rec.reads[slot]))
        pending[wid] = plist
    d["_pending"] = pending
    wbk = d["_writers_by_key"]
    for key, entry in wbk.items():
        # v4/v5 registry entries had no parallel bucket-id list.
        wbk[key] = (entry[0], entry[1], entry[2])
    d["_cc_waiters"] = {
        writer: [txns[t - tbase] for t in waiters]
        for writer, waiters in d["_cc_waiters"].items()
    }
    d["_cc_probe_pending"] = [txns[t - tbase] for t in d["_cc_probe_pending"]]
    d.pop("_join_vectorized")
    d.pop("_join_scalar")
