"""Shared test helpers: the paper's example histories and small utilities."""

from __future__ import annotations

from typing import Dict

from repro.core.model import History, Transaction, read, write


def fig_1a() -> History:
    """Fig. 1a: the RC-inconsistent motivating history."""
    t1 = Transaction([write("x", 1), write("y", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([write("x", 3)], label="t3")
    t4 = Transaction([write("z", 1), write("y", 2)], label="t4")
    t5 = Transaction([read("x", 1), read("x", 2), read("x", 3)], label="t5")
    t6 = Transaction([read("z", 1), read("y", 1)], label="t6")
    return History.from_sessions([[t1], [t2], [t3, t4], [t5, t6]])


def fig_1b() -> History:
    """Fig. 1b: the CC-inconsistent motivating history."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([write("y", 1), read("z", 2)], label="t3")
    t4 = Transaction([write("x", 3)], label="t4")
    t5 = Transaction([write("z", 1)], label="t5")
    t6 = Transaction([write("x", 4), read("z", 1), write("z", 2)], label="t6")
    t7 = Transaction([read("x", 3), read("y", 1)], label="t7")
    return History.from_sessions([[t1, t2, t3], [t4, t5], [t6], [t7]])


def fig_4a() -> History:
    """Fig. 4a: Read Consistent but RC-inconsistent."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([read("x", 2), read("x", 1)], label="t3")
    return History.from_sessions([[t1, t2], [t3]])


def fig_4b() -> History:
    """Fig. 4b: RC-consistent but RA-inconsistent."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
    t3 = Transaction([read("x", 1), read("y", 2)], label="t3")
    return History.from_sessions([[t1, t2], [t3]])


def fig_4c() -> History:
    """Fig. 4c: RA-consistent but CC-inconsistent."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([read("x", 2), write("y", 3)], label="t3")
    t4 = Transaction([read("y", 3), read("x", 1)], label="t4")
    return History.from_sessions([[t1, t2], [t3], [t4]])


def fig_4d() -> History:
    """Fig. 4d: CC-consistent (but not serializable)."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([read("x", 1), write("x", 2)], label="t2")
    t3 = Transaction([read("x", 2)], label="t3")
    t4 = Transaction([read("x", 1), write("x", 3)], label="t4")
    t5 = Transaction([read("x", 3)], label="t5")
    return History.from_sessions([[t1], [t2, t3], [t4, t5]])


def all_paper_histories() -> Dict[str, History]:
    """All named example histories keyed by figure name."""
    return {
        "fig_1a": fig_1a(),
        "fig_1b": fig_1b(),
        "fig_4a": fig_4a(),
        "fig_4b": fig_4b(),
        "fig_4c": fig_4c(),
        "fig_4d": fig_4d(),
    }


#: Expected consistency verdicts (RC, RA, CC) for each paper history.
PAPER_VERDICTS = {
    "fig_1a": (False, False, False),
    "fig_1b": (True, True, False),
    "fig_4a": (False, False, False),
    "fig_4b": (True, False, False),
    "fig_4c": (True, True, False),
    "fig_4d": (True, True, True),
}
