"""Tests for the commit relation (co') and the witness post-processing."""

import pytest

from repro.core.commit import CommitRelation
from repro.core.model import History, Transaction, read, write
from repro.core.rc import check_rc
from repro.core.violations import CycleViolation, ViolationKind
from repro.core.witnesses import (
    format_report,
    minimize_cycle_witness,
    rank_witnesses,
    shortest_cycle_through,
    summarize,
)
from repro.graph.digraph import EDGE_SHIFT, MAX_PACKED_EDGE, DiGraph

from helpers import fig_1a, fig_4a


def simple_history():
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([read("x", 1)], label="t3")
    return History.from_sessions([[t1, t2], [t3]])


class TestCommitRelation:
    def test_so_and_wr_edges_present_initially(self):
        relation = CommitRelation(simple_history())
        assert relation.edge_label(0, 1) == ("so", None)
        assert relation.edge_label(0, 2) == ("wr", "x")
        assert relation.num_inferred_edges == 0

    def test_add_inferred_labels_edge(self):
        relation = CommitRelation(simple_history())
        relation.add_inferred(1, 0, key="x")
        assert relation.edge_label(1, 0) == ("co", "x")
        assert relation.num_inferred_edges == 1

    def test_duplicate_inferred_edges_ignored(self):
        relation = CommitRelation(simple_history())
        relation.add_inferred(1, 0, key="x")
        relation.add_inferred(1, 0, key="y")
        assert relation.num_inferred_edges == 1

    def test_inferred_edge_over_existing_so_edge_ignored(self):
        relation = CommitRelation(simple_history())
        relation.add_inferred(0, 1, key="x")
        assert relation.edge_label(0, 1) == ("so", None)
        assert relation.num_inferred_edges == 0

    def test_self_edges_rejected(self):
        relation = CommitRelation(simple_history())
        with pytest.raises(ValueError):
            relation.add_inferred(1, 1)

    def test_acyclic_relation_linearizes(self):
        relation = CommitRelation(simple_history())
        order = relation.linearize()
        assert order is not None
        assert order.index(0) < order.index(1)

    def test_cyclic_relation_does_not_linearize(self):
        relation = CommitRelation(simple_history())
        relation.add_inferred(1, 0, key="x")
        relation.add_inferred(2, 1, key="x")  # makes 0->1? no: build a cycle 0->1 (so), 1->0
        assert relation.linearize() is None or relation.is_acyclic() is False

    def test_find_cycles_classifies_pure_so_wr_cycle_as_causality(self):
        t1 = Transaction([write("x", 1), read("y", 2)], label="t1")
        t2 = Transaction([write("y", 2), read("x", 1)], label="t2")
        history = History.from_sessions([[t1], [t2]])
        relation = CommitRelation(history)
        cycles = relation.find_cycles()
        assert len(cycles) == 1
        assert cycles[0].kind is ViolationKind.CAUSALITY_CYCLE

    def test_find_cycles_classifies_mixed_cycle_as_commit_order(self):
        relation = CommitRelation(simple_history())
        relation.add_inferred(1, 0, key="x")
        cycles = relation.find_cycles()
        assert len(cycles) == 1
        assert cycles[0].kind is ViolationKind.COMMIT_ORDER_CYCLE
        assert cycles[0].inferred_edges == 1

    def test_max_witnesses_limits_cycles(self):
        history = fig_4a()
        relation = CommitRelation(history)
        relation.add_inferred(1, 0, key="x")
        assert len(relation.find_cycles(max_witnesses=1)) == 1

    def test_add_inferred_rejects_overflowing_transaction_ids(self):
        # Regression: a tid >= 2**32 used to silently corrupt the packed
        # edge (src << 32 | dst collides) instead of raising.
        relation = CommitRelation(simple_history())
        with pytest.raises(ValueError, match="packed-edge range"):
            relation.add_inferred(1 << EDGE_SHIFT, 0, key="x")
        with pytest.raises(ValueError, match="packed-edge range"):
            relation.add_inferred(0, 1 << EDGE_SHIFT, key="x")
        assert relation.num_inferred_edges == 0

    def test_add_inferred_packed_rejects_out_of_range_edges(self):
        relation = CommitRelation(simple_history())
        with pytest.raises(ValueError, match="out of range"):
            relation.add_inferred_packed(MAX_PACKED_EDGE + 1)
        with pytest.raises(ValueError, match="out of range"):
            relation.add_inferred_packed(-1)
        assert relation.num_inferred_edges == 0


def so_and_wr_history():
    """A session reads its predecessor's write, closing a causality cycle.

    The t1 -> t2 edge is both ``so`` and ``wr[x]``; t2 -> t1 is ``wr[y]``.
    """
    t1 = Transaction([write("x", 1), read("y", 1)], label="t1")
    t2 = Transaction([read("x", 1), write("y", 1)], label="t2")
    return History.from_sessions([[t1, t2]])


class TestKeyedWitnessLabels:
    """Regression: first-label-wins must not drop the witnessing wr key."""

    def test_keyed_label_kept_alongside_so(self):
        relation = CommitRelation(so_and_wr_history())
        # The primary label stays `so` (first recorded), but the keyed wr
        # label is retained and preferred for witnesses.
        assert relation.edge_label(0, 1) == ("so", None)
        assert relation.witness_label(0, 1) == ("wr", "x")

    def test_inferred_key_does_not_shadow_so_witness(self):
        # A co attempt over an existing so-only edge must not reclassify it.
        t3 = Transaction([write("z", 1)], label="t3")
        t4 = Transaction([write("z", 2)], label="t4")
        history = History.from_sessions([[t3, t4]])
        bare = CommitRelation(history)
        bare.add_inferred(0, 1, key="z")
        assert bare.witness_label(0, 1) == ("so", None)

    def test_commit_relation_cycle_witness_names_the_key(self):
        relation = CommitRelation(so_and_wr_history())
        cycles = relation.find_cycles()
        assert len(cycles) == 1
        assert cycles[0].kind is ViolationKind.CAUSALITY_CYCLE
        labels = {(edge.source, edge.target): (edge.reason, edge.key) for edge in cycles[0].edges}
        assert labels[(0, 1)] == ("wr", "x")
        assert labels[(1, 0)] == ("wr", "y")

    def test_causality_cycle_witness_names_the_key_at_all_levels(self):
        from repro.core import IsolationLevel, check

        history = so_and_wr_history()
        for level in IsolationLevel:
            result = check(history, level)
            cycles = result.violations_of_kind(ViolationKind.CAUSALITY_CYCLE)
            assert cycles, level
            witness = cycles[0]
            labels = {
                (edge.source, edge.target): (edge.reason, edge.key)
                for edge in witness.edges
            }
            # Before the fix the so-first edge lost its wr key and was
            # reported as bare `so`.
            assert labels[(0, 1)] == ("wr", "x"), level
            assert labels[(1, 0)] == ("wr", "y"), level


class TestWitnessUtilities:
    def test_summarize_counts_by_kind(self):
        result = check_rc(fig_1a())
        counts = summarize(result.violations)
        assert counts[ViolationKind.COMMIT_ORDER_CYCLE] >= 1

    def test_rank_witnesses_prefers_fewer_inferred_edges(self):
        causality = CycleViolation(
            kind=ViolationKind.CAUSALITY_CYCLE, message="", edges=()
        )
        result = check_rc(fig_1a())
        ranked = rank_witnesses(list(result.violations) + [causality])
        assert ranked[0].kind is ViolationKind.CAUSALITY_CYCLE

    def test_shortest_cycle_through_finds_minimal_cycle(self):
        graph = DiGraph.from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3), (3, 0)])
        cycle = shortest_cycle_through(graph, 0)
        assert cycle is not None and len(cycle) == 2

    def test_shortest_cycle_through_none_when_acyclic(self):
        graph = DiGraph.from_edges(3, [(0, 1), (1, 2)])
        assert shortest_cycle_through(graph, 0) is None

    def test_minimize_cycle_witness_never_grows(self):
        history = fig_1a()
        result = check_rc(history)
        relation = CommitRelation(history)
        from repro.core.rc import saturate_rc

        saturate_rc(history, relation, set())
        for violation in result.violations_of_kind(ViolationKind.COMMIT_ORDER_CYCLE):
            minimized = minimize_cycle_witness(relation, violation)
            assert len(minimized.edges) <= len(violation.edges)

    def test_format_report_mentions_counts(self):
        result = check_rc(fig_1a())
        text = format_report(result.violations)
        assert "violation" in text
        assert "commit order cycle" in text

    def test_format_report_for_clean_history(self):
        assert format_report([]) == "no violations found"
