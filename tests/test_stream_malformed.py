"""Malformed / truncated input handling in the four ``stream()`` parsers.

A corrupt capture must fail loudly with :class:`HistoryFormatError`
(:class:`ParseError` is a subclass) carrying file/line context -- never leak
``KeyError`` / ``StopIteration`` / ``TypeError`` from parser internals, and
never silently pass a truncated log as consistent.
"""

import io

import pytest

from repro.core.exceptions import HistoryFormatError, ParseError
from repro.histories.formats import (
    cobra,
    dbcop,
    native,
    plume_text,
    save_history,
    stream_history,
    stream_raw_history,
)

from helpers import all_paper_histories


def test_parse_error_is_a_history_format_error():
    """Callers can harden against bad input by catching one base class."""
    assert issubclass(ParseError, HistoryFormatError)


def _drain(iterator):
    return list(iterator)


class TestMidRecordEOF:
    """Truncation mid-record must raise, with line context."""

    def test_native_truncated_mid_transaction(self):
        text = native.dumps(all_paper_histories()["fig_1b"])
        cut = text[: text.rindex("ops") + 6]  # inside a transaction object
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(native.stream(io.StringIO(cut)))
        assert "line" in str(excinfo.value)

    def test_dbcop_truncated_mid_transaction(self):
        text = dbcop.dumps(all_paper_histories()["fig_1b"])
        cut = text[: text.rindex("variable") + 4]
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(dbcop.stream(io.StringIO(cut)))
        assert "line" in str(excinfo.value)

    def test_plume_truncated_line(self):
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(plume_text.stream(io.StringIO("session=0 txn=t0 comm")))
        assert "line 1" in str(excinfo.value)

    def test_plume_truncated_mid_operation(self):
        """A cut inside the last op must not silently drop the partial op."""
        line = "session=0 txn=t0 committed ops= W(x,1) W(y,"
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(plume_text.stream(io.StringIO(line)))
        assert "truncated" in str(excinfo.value)

    def test_plume_garbage_between_operations(self):
        line = "session=0 txn=t0 committed ops= W(x,1) junk W(y,2)"
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(plume_text.stream(io.StringIO(line)))
        assert "junk" in str(excinfo.value)

    def test_cobra_truncated_row(self):
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(cobra.stream(io.StringIO("0,0,W,x,1,1\n0,1,W,y")))
        assert "line 2" in str(excinfo.value)

    def test_empty_input_rejected_everywhere(self):
        for module in (native, dbcop, plume_text, cobra):
            with pytest.raises(HistoryFormatError):
                _drain(module.stream(io.StringIO("")))


class TestBadOpKind:
    def test_native_bad_kind(self):
        text = '{"sessions": [[{"ops": [["X", "x", 1]]}]]}'
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(native.stream(io.StringIO(text)))
        assert "'R' or 'W'" in str(excinfo.value)
        assert "line" in str(excinfo.value)

    def test_native_malformed_op_shape(self):
        text = '{"sessions": [[{"ops": [["W", "x"]]}]]}'
        with pytest.raises(HistoryFormatError):
            _drain(native.stream(io.StringIO(text)))

    def test_dbcop_event_missing_fields_is_not_a_key_error(self):
        text = '{"sessions": [[{"events": [{"write": true}], "success": true}]]}'
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(dbcop.stream(io.StringIO(text)))
        assert "variable" in str(excinfo.value)

    def test_dbcop_non_object_event(self):
        text = '{"sessions": [[{"events": [17], "success": true}]]}'
        with pytest.raises(HistoryFormatError):
            _drain(dbcop.stream(io.StringIO(text)))

    def test_plume_bad_kind_in_ops(self):
        line = "session=0 txn=t0 committed ops= Q(x,1)"
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(plume_text.stream(io.StringIO(line)))
        assert "line 1" in str(excinfo.value)

    def test_cobra_bad_kind(self):
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(cobra.stream(io.StringIO("0,0,Q,x,1,1\n")))
        assert "R or W" in str(excinfo.value)


class TestDuplicateTxnId:
    def test_plume_duplicate_label_in_one_session(self):
        text = (
            "session=0 txn=t0 committed ops= W(x,1)\n"
            "session=0 txn=t0 committed ops= W(x,2)\n"
        )
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(plume_text.stream(io.StringIO(text)))
        assert "duplicate" in str(excinfo.value)
        assert "line 2" in str(excinfo.value)

    def test_plume_same_label_in_different_sessions_is_fine(self):
        text = (
            "session=0 txn=a committed ops= W(x,1)\n"
            "session=1 txn=a committed ops= R(x,1)\n"
        )
        assert len(_drain(plume_text.stream(io.StringIO(text)))) == 2

    def test_cobra_duplicate_txn_index(self):
        text = "0,0,W,x,1,1\n0,1,W,y,1,1\n0,0,W,z,1,1\n"
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(cobra.stream(io.StringIO(text)))
        assert "line 3" in str(excinfo.value)

    def test_cobra_negative_session_rejected_by_both_loaders(self):
        # loads' positional session assembly would silently drop session -1
        # rows while the compiled path would keep them; both must reject,
        # so the engines can never disagree on such a file.
        text = "-1,0,W,x,1,1\n0,0,R,x,1,1\n"
        with pytest.raises(HistoryFormatError):
            _drain(cobra.stream(io.StringIO(text)))
        with pytest.raises(HistoryFormatError):
            cobra.loads(text)


class TestFileContext:
    """stream_history / stream_raw_history prefix errors with the file path."""

    def test_stream_history_reports_the_path(self, tmp_path):
        path = tmp_path / "broken.plume"
        path.write_text("session=0 txn=t0 garbage\n")
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(stream_history(str(path)))
        message = str(excinfo.value)
        assert "broken.plume" in message and "line 1" in message

    def test_stream_raw_history_reports_the_path(self, tmp_path):
        path = tmp_path / "broken.json"
        save_history(all_paper_histories()["fig_4a"], str(path))
        path.write_text(path.read_text()[:-30])  # truncate mid-record
        with pytest.raises(HistoryFormatError) as excinfo:
            _drain(stream_raw_history(str(path)))
        assert "broken.json" in str(excinfo.value)
