"""Tests for vector clocks and tree clocks."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.tree_clock import TreeClock
from repro.graph.vector_clock import VectorClock


class TestVectorClock:
    def test_bottom_is_all_minus_one(self):
        clock = VectorClock.bottom(3)
        assert list(clock) == [-1, -1, -1]

    def test_explicit_entries_validated(self):
        with pytest.raises(ValueError):
            VectorClock(3, [1, 2])

    def test_join_is_pointwise_maximum(self):
        a = VectorClock(3, [1, 5, -1])
        b = VectorClock(3, [2, 0, 4])
        assert list(a.join(b)) == [2, 5, 4]

    def test_join_in_place(self):
        a = VectorClock(2, [1, 2])
        a.join_in_place(VectorClock(2, [3, 0]))
        assert list(a) == [3, 2]

    def test_advance_never_decreases(self):
        clock = VectorClock(2, [5, 0])
        clock.advance(0, 3)
        assert clock[0] == 5
        clock.advance(0, 9)
        assert clock[0] == 9

    def test_dominance_and_comparison(self):
        small = VectorClock(2, [1, 1])
        large = VectorClock(2, [2, 1])
        assert small <= large
        assert small < large
        assert large.dominates(small)
        assert not small.dominates(large)

    def test_concurrent_clocks(self):
        a = VectorClock(2, [2, 0])
        b = VectorClock(2, [0, 2])
        assert a.concurrent_with(b)
        assert not a.dominates(b) and not b.dominates(a)

    def test_copy_is_independent(self):
        a = VectorClock(2, [1, 1])
        b = a.copy()
        b[0] = 99
        assert a[0] == 1

    def test_equality_and_hash(self):
        assert VectorClock(2, [1, 2]) == VectorClock(2, [1, 2])
        assert hash(VectorClock(2, [1, 2])) == hash(VectorClock(2, [1, 2]))

    @given(st.lists(st.integers(-1, 20), min_size=3, max_size=3),
           st.lists(st.integers(-1, 20), min_size=3, max_size=3))
    def test_join_commutative(self, left, right):
        a, b = VectorClock(3, left), VectorClock(3, right)
        assert a.join(b) == b.join(a)

    @given(st.lists(st.integers(-1, 20), min_size=2, max_size=2))
    def test_join_idempotent(self, entries):
        clock = VectorClock(2, entries)
        assert clock.join(clock) == clock

    @given(
        st.lists(st.integers(-1, 10), min_size=2, max_size=2),
        st.lists(st.integers(-1, 10), min_size=2, max_size=2),
        st.lists(st.integers(-1, 10), min_size=2, max_size=2),
    )
    def test_join_associative(self, x, y, z):
        a, b, c = VectorClock(2, x), VectorClock(2, y), VectorClock(2, z)
        assert a.join(b).join(c) == a.join(b.join(c))


class TestTreeClock:
    def test_owner_must_be_in_range(self):
        with pytest.raises(ValueError):
            TreeClock(2, 5)

    def test_increment_advances_owner_only(self):
        clock = TreeClock(3, 1)
        clock.increment()
        clock.increment(2)
        assert clock.get(1) == 3
        assert clock.get(0) == 0 and clock.get(2) == 0

    def test_increment_rejects_negative(self):
        with pytest.raises(ValueError):
            TreeClock(2, 0).increment(-1)

    def test_join_transfers_knowledge(self):
        a = TreeClock(3, 0)
        b = TreeClock(3, 1)
        b.increment(5)
        a.join(b)
        assert a.get(1) == 5
        assert a.get(0) == 0

    def test_join_keeps_maximum(self):
        a = TreeClock(2, 0)
        a.increment(10)
        b = TreeClock(2, 1)
        b.increment(1)
        stale = TreeClock(2, 0)
        stale.increment(3)
        b.join(stale)
        a.join(b)
        assert a.get(0) == 10
        assert a.get(1) == 1

    def test_copy_is_independent(self):
        a = TreeClock(2, 0)
        a.increment(4)
        b = a.copy()
        b.increment(3)
        assert a.get(0) == 4
        assert b.get(0) == 7

    def test_dominates(self):
        a = TreeClock(2, 0)
        a.increment(2)
        b = TreeClock(2, 0)
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_monotone_copy_requires_same_owner(self):
        with pytest.raises(ValueError):
            TreeClock(2, 0).monotone_copy_from(TreeClock(2, 1))

    @settings(deadline=None, max_examples=50)
    @given(st.integers(0, 2 ** 31 - 1))
    def test_tree_clock_matches_vector_clock_semantics(self, seed):
        """Random interleavings of increments and joins agree with vector clocks."""
        rng = random.Random(seed)
        num_sessions = rng.randint(2, 5)
        tree = [TreeClock(num_sessions, s) for s in range(num_sessions)]
        vector = [VectorClock(num_sessions, [0] * num_sessions) for _ in range(num_sessions)]
        for _ in range(30):
            actor = rng.randrange(num_sessions)
            if rng.random() < 0.5:
                amount = rng.randint(1, 3)
                tree[actor].increment(amount)
                vector[actor][actor] += amount
            else:
                other = rng.randrange(num_sessions)
                tree[actor].join(tree[other])
                vector[actor].join_in_place(vector[other])
            assert tree[actor].entries() == list(vector[actor])
