"""Property-based tests (hypothesis) for the core invariants of the library.

These properties tie the whole system together:

* the optimized AWDIT checkers agree with the naive from-definition oracles
  on arbitrary generated histories,
* the isolation-level lattice is respected (CC ⊑ RA ⊑ RC),
* histories produced by the serializable / causal database simulator satisfy
  the levels they promise,
* serialization formats round-trip verdicts,
* the lower-bound reductions track triangle-freeness exactly.
"""


from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines.naive import check_naive
from repro.baselines.plume import check_plume
from repro.core import IsolationLevel, check, check_all_levels
from repro.db.config import DatabaseConfig, IsolationMode
from repro.histories.formats import cobra, dbcop, native, plume_text
from repro.histories.generator import (
    RandomHistoryConfig,
    generate_random_history,
)
from repro.lowerbounds.reductions import (
    general_reduction,
    ra_two_session_reduction,
    rc_single_session_reduction,
)
from repro.lowerbounds.triangles import has_triangle, random_graph
from repro.workloads import CTwitterWorkload, collect_history

LEVELS = list(IsolationLevel)

history_configs = st.builds(
    RandomHistoryConfig,
    num_sessions=st.integers(1, 5),
    num_transactions=st.integers(0, 30),
    num_keys=st.integers(1, 6),
    min_ops_per_txn=st.just(1),
    max_ops_per_txn=st.integers(1, 6),
    read_fraction=st.floats(0.2, 0.8),
    abort_probability=st.sampled_from([0.0, 0.1]),
    mode=st.sampled_from(["serializable", "random_reads"]),
    seed=st.integers(0, 10_000),
)


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=history_configs, level=st.sampled_from(LEVELS))
def test_awdit_agrees_with_naive_oracle(config, level):
    """The optimized algorithms and the from-definition oracles give the same verdict."""
    history = generate_random_history(config)
    assert check(history, level).is_consistent == check_naive(history, level).is_consistent


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=history_configs, level=st.sampled_from(LEVELS))
def test_awdit_agrees_with_plume_baseline(config, level):
    """AWDIT and the Plume-like TAP search give the same verdict."""
    history = generate_random_history(config)
    assert check(history, level).is_consistent == check_plume(history, level).is_consistent


@settings(max_examples=60, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=history_configs)
def test_isolation_lattice_monotonicity(config):
    """CC-consistency implies RA-consistency implies RC-consistency."""
    history = generate_random_history(config)
    results = check_all_levels(history)
    cc = results[IsolationLevel.CAUSAL_CONSISTENCY].is_consistent
    ra = results[IsolationLevel.READ_ATOMIC].is_consistent
    rc = results[IsolationLevel.READ_COMMITTED].is_consistent
    assert (not cc or ra) and (not ra or rc)


@settings(max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 10_000))
def test_serializable_generator_histories_satisfy_every_level(seed):
    history = generate_random_history(
        RandomHistoryConfig(seed=seed, num_transactions=25, mode="serializable")
    )
    assert all(result.is_consistent for result in check_all_levels(history).values())


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1_000), sessions=st.integers(2, 6))
def test_causal_database_histories_satisfy_cc(seed, sessions):
    """The causal simulator never produces CC violations."""
    config = DatabaseConfig(
        isolation=IsolationMode.CAUSAL,
        num_replicas=min(3, sessions),
        replication_lag=20.0,
        seed=seed,
    )
    history = collect_history(
        CTwitterWorkload(num_users=6),
        config,
        num_sessions=sessions,
        num_transactions=60,
        seed=seed,
    )
    assert check(history, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(0, 1_000))
def test_read_committed_database_histories_satisfy_rc(seed):
    config = DatabaseConfig(
        isolation=IsolationMode.READ_COMMITTED,
        num_replicas=3,
        replication_lag=30.0,
        seed=seed,
    )
    history = collect_history(
        CTwitterWorkload(num_users=6),
        config,
        num_sessions=6,
        num_transactions=60,
        seed=seed,
    )
    assert check(history, IsolationLevel.READ_COMMITTED).is_consistent


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    config=history_configs,
    fmt=st.sampled_from(["native", "plume", "dbcop", "cobra"]),
)
def test_format_round_trip_preserves_verdicts(config, fmt):
    module = {"native": native, "plume": plume_text, "dbcop": dbcop, "cobra": cobra}[fmt]
    history = generate_random_history(config)
    if history.num_transactions == 0:
        return
    reloaded = module.loads(module.dumps(history))
    assert reloaded.num_operations == history.num_operations
    for level in LEVELS:
        assert (
            check(reloaded, level).is_consistent == check(history, level).is_consistent
        )


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    num_vertices=st.integers(3, 9),
    edge_probability=st.floats(0.1, 0.7),
    seed=st.integers(0, 10_000),
)
def test_reductions_track_triangle_freeness(num_vertices, edge_probability, seed):
    graph = random_graph(num_vertices, edge_probability, seed=seed)
    triangle = has_triangle(graph)
    assert check(
        ra_two_session_reduction(graph), IsolationLevel.READ_ATOMIC
    ).is_consistent == (not triangle)
    assert check(
        rc_single_session_reduction(graph), IsolationLevel.READ_COMMITTED
    ).is_consistent == (not triangle)
    general = general_reduction(graph)
    if not triangle:
        assert check(general, IsolationLevel.CAUSAL_CONSISTENCY).is_consistent
    else:
        assert not check(general, IsolationLevel.READ_COMMITTED).is_consistent


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=history_configs)
def test_single_session_ra_fast_path_matches_general_algorithm(config):
    """Theorem 1.6's linear algorithm agrees with Algorithm 2 on one session."""
    config.num_sessions = 1
    history = generate_random_history(config)
    from repro.core.ra import check_ra, check_ra_single_session

    assert (
        check_ra_single_session(history).is_consistent
        == check_ra(history).is_consistent
    )


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(config=history_configs)
def test_consistent_history_yields_linearizable_commit_relation(config):
    """When AWDIT reports consistency, the inferred co' linearizes (Lemma 3.2)."""
    from repro.core.commit import CommitRelation
    from repro.core.rc import saturate_rc
    from repro.core.read_consistency import check_read_consistency

    history = generate_random_history(config)
    report = check_read_consistency(history)
    relation = CommitRelation(history)
    saturate_rc(history, relation, report.bad_reads)
    if check(history, IsolationLevel.READ_COMMITTED).is_consistent:
        order = relation.linearize()
        assert order is not None
        position = {tid: i for i, tid in enumerate(order)}
        for source, target in history.so_edges():
            assert position[source] < position[target]
