"""Workload/db histories round-trip through the compiled engine without drift.

The compiled IR interns keys and values and re-infers ``wr`` on the raw
ingest path, so anything unusual the workload generators or the simulated
database emit -- aborted transactions (and reads *from* aborted writes under
bug injection), ``None`` values from uninitialized reads, label schemes --
must survive ``compile_history`` and the file ingest paths with verdicts and
witnesses identical to ``engine="object"``.

This suite is the audit the sharded-checking PR performed over
``repro.workloads`` and ``repro.db`` (no drift was found; these tests pin
the result), plus targeted constructions for the corners the generators do
not currently hit (``None`` values interned next to aborted reads).
"""

import dataclasses

import pytest

from repro.core import IsolationLevel, check
from repro.core.model import History, Transaction, read, write
from repro.db.config import BugRates, IsolationMode
from repro.db.profiles import profile_by_name
from repro.histories.formats import load_compiled, load_history, save_history
from repro.shard import check_sharded, load_compiled_sharded
from repro.workloads import collect_history, workload_by_name

LEVELS = list(IsolationLevel)
WORKLOADS = ("tpcc", "ctwitter", "rubis", "custom")
FORMATS = [("native", ".json"), ("plume", ".plume"), ("dbcop", ".dbcop"), ("cobra", ".cobra")]


def assert_no_engine_drift(history):
    """Object, compiled, and sharded engines agree on everything visible."""
    for level in LEVELS:
        obj = check(history, level, engine="object")
        comp = check(history, level, engine="compiled")
        shard = check_sharded(history, level, jobs=2, mode="inline")
        for result in (comp, shard):
            assert result.is_consistent == obj.is_consistent, level
            assert [v.describe() for v in result.violations] == [
                v.describe() for v in obj.violations
            ], level


def buggy_profile(seed):
    """A read-committed profile with aborts and every bug injector active."""
    return dataclasses.replace(
        profile_by_name("cockroach"),
        isolation=IsolationMode("read-committed"),
        seed=seed,
        abort_probability=0.2,
        bug_rates=BugRates(stale_read=0.1, aborted_read=0.1, fractured_read=0.1),
    )


class TestWorkloadEngineParity:
    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_clean_profiles_have_no_drift(self, workload):
        history = collect_history(
            workload_by_name(workload),
            profile_by_name("postgres"),
            num_sessions=4,
            num_transactions=60,
            seed=7,
        )
        assert_no_engine_drift(history)

    @pytest.mark.parametrize("workload", WORKLOADS)
    def test_buggy_aborting_profiles_have_no_drift(self, workload):
        """Aborted transactions and aborted/stale/fractured reads included."""
        history = collect_history(
            workload_by_name(workload),
            buggy_profile(9),
            num_sessions=4,
            num_transactions=80,
            seed=9,
        )
        assert any(not t.committed for t in history.transactions), (
            "profile should produce aborted transactions"
        )
        assert_no_engine_drift(history)


class TestWorkloadFileRoundTrip:
    @pytest.mark.parametrize("fmt,ext", FORMATS)
    def test_buggy_history_round_trips_all_formats(self, tmp_path, fmt, ext):
        history = collect_history(
            workload_by_name("ctwitter"),
            buggy_profile(11),
            num_sessions=4,
            num_transactions=60,
            seed=11,
        )
        path = tmp_path / f"h{ext}"
        save_history(history, str(path), fmt=fmt)
        loaded = load_history(str(path), fmt=fmt)
        compiled = load_compiled(str(path), fmt=fmt)
        sharded = load_compiled_sharded(str(path), 2, fmt=fmt)
        for level in LEVELS:
            obj = check(loaded, level, engine="object")
            for ch in (compiled, sharded):
                result = check(ch, level)
                assert result.is_consistent == obj.is_consistent, (fmt, level)
                assert [v.describe() for v in result.violations] == [
                    v.describe() for v in obj.violations
                ], (fmt, level)


class TestInternTableCorners:
    """Corners the ISSUE called out: None values and aborted-transaction reads."""

    def history_with_none_values_and_aborted_reads(self):
        t1 = Transaction(
            [write("x", None), read("x", None)], label="aborted_w", committed=False
        )
        t2 = Transaction([read("x", None), write("y", 1)], label="r_none")
        t3 = Transaction([read("y", 1), write("x", 2)], label="r_y")
        return History.from_sessions([[t1, t2], [t3]])

    def test_none_values_intern_without_drift(self):
        assert_no_engine_drift(self.history_with_none_values_and_aborted_reads())

    @pytest.mark.parametrize("fmt,ext", FORMATS)
    def test_none_values_round_trip_all_formats(self, tmp_path, fmt, ext):
        history = self.history_with_none_values_and_aborted_reads()
        path = tmp_path / f"h{ext}"
        save_history(history, str(path), fmt=fmt)
        loaded = load_history(str(path), fmt=fmt)
        compiled = load_compiled(str(path), fmt=fmt)
        for level in LEVELS:
            obj = check(loaded, level, engine="object")
            result = check(compiled, level)
            assert result.is_consistent == obj.is_consistent, (fmt, level)
            assert [v.describe() for v in result.violations] == [
                v.describe() for v in obj.violations
            ], (fmt, level)