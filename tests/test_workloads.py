"""Tests for the workload generators and the workload runner."""

import pytest

from repro.core import IsolationLevel, check, check_all_levels
from repro.db.config import DatabaseConfig, IsolationMode
from repro.db.database import SimulatedDatabase
from repro.workloads import (
    CTwitterWorkload,
    RUBiSWorkload,
    ScalableTransactionWorkload,
    TPCCWorkload,
    WorkloadRunConfig,
    collect_history,
    run_workload,
    workload_by_name,
)


ALL_WORKLOADS = [
    TPCCWorkload(num_warehouses=1, num_items=20, customers_per_district=5),
    CTwitterWorkload(num_users=10),
    RUBiSWorkload(num_users=8, num_items=24),
    ScalableTransactionWorkload(num_keys=30, ops_per_transaction=6),
]


class TestWorkloadShapes:
    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_initial_keys_nonempty_and_unique(self, workload):
        keys = workload.initial_keys()
        assert keys
        assert len(keys) == len(set(keys))

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_collect_history_produces_requested_transactions(self, workload):
        history = collect_history(
            workload,
            DatabaseConfig(seed=2),
            num_sessions=4,
            num_transactions=50,
            seed=5,
        )
        # +1 for the initialization transaction.
        assert history.num_transactions == 51
        assert history.num_sessions == 4

    @pytest.mark.parametrize("workload", ALL_WORKLOADS, ids=lambda w: w.name)
    def test_histories_from_serializable_database_are_consistent(self, workload):
        history = collect_history(
            workload,
            DatabaseConfig(seed=2),
            num_sessions=4,
            num_transactions=60,
            seed=5,
        )
        assert all(r.is_consistent for r in check_all_levels(history).values())

    def test_describe_mentions_name(self):
        assert "tpcc" in TPCCWorkload().describe()

    def test_ctwitter_average_transaction_size_is_moderate(self):
        history = collect_history(
            CTwitterWorkload(num_users=20),
            DatabaseConfig(seed=1),
            num_sessions=5,
            num_transactions=300,
            seed=2,
        )
        sizes = [
            len(history.transactions[tid])
            for tid in history.committed[1:]  # skip the init transaction
        ]
        average = sum(sizes) / len(sizes)
        # The paper reports ~7.6 ops per transaction for C-Twitter.
        assert 3.0 <= average <= 12.0

    def test_scalable_workload_has_exact_transaction_size(self):
        workload = ScalableTransactionWorkload(num_keys=20, ops_per_transaction=9)
        history = collect_history(
            workload, DatabaseConfig(seed=4), num_sessions=3, num_transactions=40, seed=1
        )
        sizes = {len(history.transactions[tid]) for tid in history.committed[1:]}
        assert sizes == {9}

    def test_scalable_workload_validates_parameters(self):
        with pytest.raises(ValueError):
            ScalableTransactionWorkload(ops_per_transaction=0)
        with pytest.raises(ValueError):
            ScalableTransactionWorkload(read_fraction=2.0)

    def test_tpcc_touches_expected_key_families(self):
        history = collect_history(
            TPCCWorkload(num_warehouses=1, num_items=10),
            DatabaseConfig(seed=8),
            num_sessions=3,
            num_transactions=100,
            seed=8,
        )
        keys = {str(k) for k in history.keys}
        assert any("ytd" in k for k in keys)
        assert any(":s" in k and ":qty" in k for k in keys)

    def test_rubis_touches_items_and_users(self):
        history = collect_history(
            RUBiSWorkload(num_users=6, num_items=12),
            DatabaseConfig(seed=8),
            num_sessions=3,
            num_transactions=80,
            seed=8,
        )
        keys = {str(k) for k in history.keys}
        assert any(k.startswith("item") for k in keys)
        assert any(k.startswith("user") for k in keys)


class TestRunner:
    def test_run_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadRunConfig(num_sessions=0).validate()
        with pytest.raises(ValueError):
            WorkloadRunConfig(num_transactions=-1).validate()

    def test_run_workload_is_deterministic_given_seeds(self):
        def run():
            database = SimulatedDatabase(DatabaseConfig(seed=3, num_replicas=2))
            return run_workload(
                CTwitterWorkload(num_users=5),
                database,
                WorkloadRunConfig(num_sessions=3, num_transactions=40, seed=9),
            )

        first, second = run(), run()
        assert [t.operations for t in first.transactions] == [
            t.operations for t in second.transactions
        ]

    def test_workload_by_name(self):
        assert workload_by_name("tpcc").name == "tpcc"
        assert workload_by_name("C-Twitter").name == "ctwitter"
        assert workload_by_name("rubis").name == "rubis"
        assert workload_by_name("custom", ops_per_transaction=4).ops_per_transaction == 4
        with pytest.raises(ValueError):
            workload_by_name("ycsb")

    def test_weak_database_modes_stay_within_their_level(self):
        config = DatabaseConfig(
            isolation=IsolationMode.READ_COMMITTED,
            num_replicas=4,
            replication_lag=40.0,
            seed=11,
        )
        history = collect_history(
            CTwitterWorkload(num_users=8),
            config,
            num_sessions=8,
            num_transactions=250,
            seed=4,
        )
        assert check(history, IsolationLevel.READ_COMMITTED).is_consistent
