"""Tests for the isolation-level enum and strength lattice."""

import pytest

from repro.core.isolation import (
    IsolationLevel,
    is_stronger_or_equal,
    stronger_levels,
    weaker_levels,
)

RC = IsolationLevel.READ_COMMITTED
RA = IsolationLevel.READ_ATOMIC
CC = IsolationLevel.CAUSAL_CONSISTENCY


class TestParsing:
    @pytest.mark.parametrize(
        "name,expected",
        [
            ("rc", RC),
            ("RC", RC),
            ("read committed", RC),
            ("READ_COMMITTED", RC),
            ("ra", RA),
            ("read-atomic", RA),
            ("cc", CC),
            ("causal", CC),
            ("Causal Consistency", CC),
            ("TCC", CC),
        ],
    )
    def test_from_string_accepts_aliases(self, name, expected):
        assert IsolationLevel.from_string(name) is expected

    def test_from_string_rejects_unknown(self):
        with pytest.raises(ValueError):
            IsolationLevel.from_string("snapshot")

    def test_short_names(self):
        assert RC.short_name == "RC"
        assert RA.short_name == "RA"
        assert CC.short_name == "CC"


class TestLattice:
    def test_cc_is_strongest(self):
        assert is_stronger_or_equal(CC, RA)
        assert is_stronger_or_equal(CC, RC)
        assert is_stronger_or_equal(RA, RC)

    def test_strength_is_not_symmetric(self):
        assert not is_stronger_or_equal(RC, RA)
        assert not is_stronger_or_equal(RA, CC)

    def test_reflexive(self):
        for level in IsolationLevel:
            assert is_stronger_or_equal(level, level)

    def test_weaker_levels(self):
        assert set(weaker_levels(CC)) == {RC, RA, CC}
        assert set(weaker_levels(RA)) == {RC, RA}
        assert set(weaker_levels(RC)) == {RC}

    def test_stronger_levels(self):
        assert set(stronger_levels(RC)) == {RC, RA, CC}
        assert set(stronger_levels(CC)) == {CC}
