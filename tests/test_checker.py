"""Tests for the unified checker entry point and the check results."""

import pytest

from repro.core import IsolationLevel, check, check_all_levels
from repro.core.model import History, Transaction, read, write
from repro.core.result import CheckResult, Stopwatch
from repro.core.violations import ViolationKind

from helpers import PAPER_VERDICTS, all_paper_histories, fig_4a, fig_4d


class TestDispatch:
    def test_check_dispatches_by_level(self):
        history = fig_4a()
        for level in IsolationLevel:
            result = check(history, level)
            assert result.level is level

    def test_default_level_is_cc(self):
        result = check(fig_4d())
        assert result.level is IsolationLevel.CAUSAL_CONSISTENCY

    def test_single_session_ra_uses_fast_path(self):
        history = History.from_sessions([[Transaction([write("x", 1)])]])
        result = check(history, IsolationLevel.READ_ATOMIC)
        assert result.checker == "awdit-1session"

    def test_single_session_fast_path_can_be_disabled(self):
        history = History.from_sessions([[Transaction([write("x", 1)])]])
        result = check(
            history, IsolationLevel.READ_ATOMIC, use_single_session_fast_path=False
        )
        assert result.checker == "awdit"

    def test_check_all_levels_returns_all_three(self):
        results = check_all_levels(fig_4a())
        assert set(results) == set(IsolationLevel)

    def test_check_all_levels_uses_single_session_fast_path(self):
        """Regression: check_all_levels used to call check_ra directly,
        bypassing the single-session specialization that check() applies."""
        history = History.from_sessions(
            [[
                Transaction([write("x", 1), write("y", 1)]),
                Transaction([read("x", 1), write("x", 2)]),
                Transaction([read("x", 2), read("y", 1)]),
            ]]
        )
        direct = check(history, IsolationLevel.READ_ATOMIC)
        via_all = check_all_levels(history)[IsolationLevel.READ_ATOMIC]
        assert direct.checker == via_all.checker == "awdit-1session"
        assert direct.is_consistent == via_all.is_consistent
        assert [v.kind for v in direct.violations] == [v.kind for v in via_all.violations]
        assert direct.stats["inferred_edges"] == via_all.stats["inferred_edges"]
        assert set(direct.stats) == set(via_all.stats)

    def test_check_all_levels_fast_path_can_be_disabled(self):
        history = History.from_sessions([[Transaction([write("x", 1)])]])
        results = check_all_levels(history, use_single_session_fast_path=False)
        assert results[IsolationLevel.READ_ATOMIC].checker == "awdit"


class TestLatticeMonotonicity:
    @pytest.mark.parametrize("name", sorted(PAPER_VERDICTS))
    def test_paper_histories_respect_the_lattice(self, name):
        history = all_paper_histories()[name]
        results = check_all_levels(history)
        rc = results[IsolationLevel.READ_COMMITTED].is_consistent
        ra = results[IsolationLevel.READ_ATOMIC].is_consistent
        cc = results[IsolationLevel.CAUSAL_CONSISTENCY].is_consistent
        # CC-consistent implies RA-consistent implies RC-consistent.
        assert not (cc and not ra)
        assert not (ra and not rc)


class TestCheckResult:
    def test_is_consistent_reflects_violations(self):
        empty = CheckResult(level=IsolationLevel.READ_COMMITTED)
        assert empty.is_consistent
        assert empty.violation_kinds() == []

    def test_summary_mentions_verdict_and_level(self):
        result = check(fig_4a(), IsolationLevel.READ_COMMITTED)
        summary = result.summary()
        assert "RC" in summary and "VIOLATION" in summary
        ok = check(fig_4d(), IsolationLevel.CAUSAL_CONSISTENCY).summary()
        assert "CONSISTENT" in ok

    def test_describe_violations_limits_output(self):
        result = check(fig_4a(), IsolationLevel.READ_COMMITTED)
        text = result.describe_violations(limit=0)
        assert "more" in text or text == ""

    def test_violations_of_kind_filters(self):
        result = check(fig_4a(), IsolationLevel.READ_COMMITTED)
        cycles = result.violations_of_kind(ViolationKind.COMMIT_ORDER_CYCLE)
        assert all(v.kind is ViolationKind.COMMIT_ORDER_CYCLE for v in cycles)

    def test_stopwatch_accumulates_laps(self):
        watch = Stopwatch()
        watch.lap("a")
        watch.lap("b")
        assert set(watch.laps) == {"a", "b"}
        assert watch.total == pytest.approx(sum(watch.laps.values()))

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            check(fig_4a(), "not-a-level")
