"""Tests for the Causal Consistency checker (Algorithm 3)."""

from repro.core.cc import check_cc, compute_happens_before
from repro.core.model import History, Transaction, read, write
from repro.core.violations import ViolationKind

from helpers import fig_1a, fig_1b, fig_4a, fig_4b, fig_4c, fig_4d


class TestVerdicts:
    def test_fig_1b_is_cc_inconsistent(self):
        result = check_cc(fig_1b())
        assert not result.is_consistent
        assert ViolationKind.COMMIT_ORDER_CYCLE in result.violation_kinds()

    def test_fig_4c_is_cc_inconsistent(self):
        assert not check_cc(fig_4c()).is_consistent

    def test_fig_4d_is_cc_consistent(self):
        assert check_cc(fig_4d()).is_consistent

    def test_weaker_violations_also_fail_cc(self):
        assert not check_cc(fig_1a()).is_consistent
        assert not check_cc(fig_4a()).is_consistent
        assert not check_cc(fig_4b()).is_consistent


class TestHappensBefore:
    def test_session_order_is_in_happens_before(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("y", 2)], label="t2")
        history = History.from_sessions([[t1, t2]])
        hb, violations = compute_happens_before(history)
        assert violations == []
        assert hb[1][0] == 0  # t1 (index 0 of session 0) happens before t2
        assert hb[0][0] == -1

    def test_wr_edges_are_in_happens_before(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([read("x", 1)], label="t2")
        history = History.from_sessions([[t1], [t2]])
        hb, _ = compute_happens_before(history)
        assert hb[1][0] == 0

    def test_happens_before_is_transitive(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([read("x", 1), write("y", 2)], label="t2")
        t3 = Transaction([read("y", 2)], label="t3")
        history = History.from_sessions([[t1], [t2], [t3]])
        hb, _ = compute_happens_before(history)
        assert hb[2][0] == 0  # t1 reaches t3 through t2
        assert hb[2][1] == 0

    def test_concurrent_transactions_not_related(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("y", 2)], label="t2")
        history = History.from_sessions([[t1], [t2]])
        hb, _ = compute_happens_before(history)
        assert hb[0][1] == -1 and hb[1][0] == -1

    def test_causality_cycle_detected(self):
        t1 = Transaction([write("x", 1), read("y", 2)], label="t1")
        t2 = Transaction([write("y", 2), read("x", 1)], label="t2")
        history = History.from_sessions([[t1], [t2]])
        hb, violations = compute_happens_before(history)
        assert hb is None
        assert violations
        assert all(v.kind is ViolationKind.CAUSALITY_CYCLE for v in violations)


class TestCausalityCycles:
    def test_wr_cycle_reported_as_causality_cycle(self):
        t1 = Transaction([write("x", 1), read("y", 2)], label="t1")
        t2 = Transaction([write("y", 2), read("x", 1)], label="t2")
        history = History.from_sessions([[t1], [t2]])
        result = check_cc(history)
        assert not result.is_consistent
        assert result.violation_kinds() == [ViolationKind.CAUSALITY_CYCLE]

    def test_so_wr_mixed_cycle(self):
        t1 = Transaction([read("y", 2)], label="t1")
        t2 = Transaction([write("x", 1)], label="t2")
        t3 = Transaction([read("x", 1), write("y", 2)], label="t3")
        history = History.from_sessions([[t1, t2], [t3]])
        result = check_cc(history)
        assert not result.is_consistent
        assert ViolationKind.CAUSALITY_CYCLE in result.violation_kinds()


class TestCausalDependencies:
    def test_lost_causal_dependency_detected(self):
        # Classic causal anomaly: t3 sees t2's write (which depends on t1)
        # but still reads the value t1 overwrote.
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2)], label="t2")
        t3 = Transaction([read("x", 2), write("y", 3)], label="t3")
        t4 = Transaction([read("y", 3), read("x", 1)], label="t4")
        history = History.from_sessions([[t1, t2], [t3], [t4]])
        assert not check_cc(history).is_consistent

    def test_reading_concurrent_writes_in_any_order_is_fine(self):
        t1 = Transaction([write("x", 1)], label="t1")
        t2 = Transaction([write("x", 2)], label="t2")
        t3 = Transaction([read("x", 1)], label="t3")
        t4 = Transaction([read("x", 2)], label="t4")
        history = History.from_sessions([[t1], [t2], [t3], [t4]])
        assert check_cc(history).is_consistent

    def test_convergence_violation_detected(self):
        # Two observers order the same two concurrent writes differently:
        # no single commit order can satisfy both (CC requires convergence).
        t1 = Transaction([write("x", 1), write("y", 1)], label="t1")
        t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
        o1 = Transaction([read("x", 1), read("x", 2), read("y", 2), read("y", 1)], label="o1")
        history = History.from_sessions([[t1], [t2], [o1]])
        assert not check_cc(history).is_consistent

    def test_deep_session_chain_scales_without_recursion(self):
        transactions = [Transaction([write("x", i)]) for i in range(2000)]
        history = History.from_sessions([transactions])
        assert check_cc(history).is_consistent


class TestReporting:
    def test_stats_contain_phase_timings(self):
        result = check_cc(fig_1b())
        assert "happens_before" in result.stats
        assert result.num_sessions == 4

    def test_witness_cycle_references_expected_transactions(self):
        result = check_cc(fig_1b())
        cycles = result.violations_of_kind(ViolationKind.COMMIT_ORDER_CYCLE)
        assert cycles
        names = {fig_1b().transactions[t].name for t in cycles[0].transactions}
        # The paper's witness involves t4, t5, t6 (t6 co-before t4 closes it).
        assert {"t4", "t5", "t6"} <= names or len(names) >= 2
