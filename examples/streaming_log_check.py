#!/usr/bin/env python3
"""Check a large on-disk history log in one streaming pass.

The batch workflow (`load_history` + `check`) materializes the entire
history in memory before checking it.  This example shows the streaming
workflow instead:

1. generate a sizeable history and write it to disk as a plume-style log,
2. replay the log through the iterator-based parser + IncrementalChecker,
   which keeps only transaction-level summaries in memory,
3. watch read-level violations surface *while* the log is streaming, long
   before the end of the file,
4. finalize and compare the verdicts with the batch checker.

Run with::

    python examples/streaming_log_check.py
"""

import os
import tempfile

from repro import IncrementalChecker, IsolationLevel, check
from repro.core.witnesses import format_report
from repro.stream import check_stream_file
from repro.histories.formats import load_history, save_history, stream_history
from repro.histories.generator import (
    RandomHistoryConfig,
    generate_random_history,
    inject_anomaly,
)
from repro.core.violations import ViolationKind


def make_log(path: str) -> None:
    """Write a ~40k-operation log containing one injected anomaly."""
    config = RandomHistoryConfig(
        num_sessions=6,
        num_transactions=5000,
        num_keys=300,
        min_ops_per_txn=4,
        max_ops_per_txn=10,
        read_fraction=0.5,
        mode="serializable",
        seed=42,
    )
    history = generate_random_history(config)
    history = inject_anomaly(history, ViolationKind.NOT_LATEST_WRITE)
    save_history(history, path, fmt="plume")
    size_kb = os.path.getsize(path) // 1024
    print(f"wrote {history.describe()} to {path} ({size_kb} KiB)")


def stream_check(path: str) -> None:
    """One-pass check with progress reporting and early violation output."""
    checker = IncrementalChecker(levels=(IsolationLevel.CAUSAL_CONSISTENCY,))
    reported = 0
    for session_id, txn in stream_history(path, fmt="plume"):
        checker.append(session_id, txn)
        # Read-level anomalies become visible the moment the offending read
        # resolves -- no need to wait for the end of the log.
        live = checker.violations
        while reported < len(live):
            violation = live[reported]
            print(
                f"  !! after {checker.num_transactions} txns "
                f"({checker.num_operations} ops): {violation.describe()}"
            )
            reported += 1
    results = checker.finalize()
    result = results[IsolationLevel.CAUSAL_CONSISTENCY]
    print(f"\nstreaming verdict : {result.summary()}")
    if not result.is_consistent:
        print(format_report(result.violations, limit=3))

    # The compiled streaming core (`awdit check --stream`'s default engine)
    # runs the same one-pass check on raw parser records -- no Transaction
    # or Operation objects at all -- with checkpoint/resume support.
    compiled = check_stream_file(
        path, IsolationLevel.CAUSAL_CONSISTENCY, fmt="plume", engine="compiled"
    )
    print(f"compiled verdict  : {compiled.summary()}")

    # The batch checker agrees (both streaming engines are property-tested
    # to return identical verdicts and violation kinds).
    batch = check(load_history(path, fmt="plume"), IsolationLevel.CAUSAL_CONSISTENCY)
    print(f"batch verdict     : {batch.summary()}")
    assert batch.is_consistent == result.is_consistent == compiled.is_consistent


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "observed.plume")
        make_log(path)
        stream_check(path)


if __name__ == "__main__":
    main()
