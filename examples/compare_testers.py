#!/usr/bin/env python3
"""Compare AWDIT against the baseline testers on one history.

Collects a mid-sized C-Twitter history from the simulated database and runs
every tester from the paper's evaluation on it (AWDIT, the Plume-like,
DBCop-like, CausalC+-like, TCC-Mono-like, and PolySI-like baselines),
printing a timing table.  This is a miniature of the paper's Fig. 7/8
comparison; the benchmark harness under ``benchmarks/`` runs the full sweeps.

Run with::

    python examples/compare_testers.py [num_transactions]
"""

import sys
import time

from repro.baselines import BASELINE_REGISTRY
from repro.core import IsolationLevel, check
from repro.db.profiles import COCKROACH_LIKE, with_overrides
from repro.workloads import CTwitterWorkload, collect_history


def main() -> None:
    num_transactions = int(sys.argv[1]) if len(sys.argv) > 1 else 150
    history = collect_history(
        CTwitterWorkload(num_users=25),
        with_overrides(COCKROACH_LIKE, seed=1),
        num_sessions=16,
        num_transactions=num_transactions,
        seed=1,
    )
    print(f"history: {history.describe()}")
    print(f"{'tester':<14}{'level':<6}{'verdict':<12}{'time':>10}")
    print("-" * 44)

    start = time.perf_counter()
    result = check(history, IsolationLevel.CAUSAL_CONSISTENCY)
    elapsed = time.perf_counter() - start
    print(f"{'awdit':<14}{'CC':<6}{'consistent' if result.is_consistent else 'violation':<12}{elapsed * 1000:>8.1f}ms")

    # The Datalog- and SAT-based baselines blow up quickly (that is the point
    # of the paper's Fig. 7); only run them on small histories.
    size_caps = {"causalc+": 150, "polysi": 150, "dbcop": 1500, "tcc-mono": 1500}
    for name, checker in BASELINE_REGISTRY.items():
        if name == "naive":
            continue
        cap = size_caps.get(name)
        if cap is not None and num_transactions > cap:
            print(f"{name:<14}{'CC':<6}{'skipped':<12}{'(> ' + str(cap) + ' txns)':>10}")
            continue
        start = time.perf_counter()
        result = checker(history, IsolationLevel.CAUSAL_CONSISTENCY)
        elapsed = time.perf_counter() - start
        level = "SI" if name == "polysi" else "CC"
        verdict = "consistent" if result.is_consistent else "violation"
        print(f"{name:<14}{level:<6}{verdict:<12}{elapsed * 1000:>8.1f}ms")


if __name__ == "__main__":
    main()
