#!/usr/bin/env python3
"""How weak can a social-network backend be before users notice?

The paper's C-Twitter benchmark models the real-time feed of a social
network.  This example runs the same workload against the simulated database
configured at four different isolation strengths (Serializable, Causal, Read
Atomic, Read Committed) and reports, for each configuration, which weak
isolation levels the recorded history still satisfies.

The output shows the expected staircase: a serializable store passes every
check, a causal store passes CC and below, a read-atomic store starts
exhibiting causality violations, and a read-committed store additionally
exhibits fractured reads.

Run with::

    python examples/twitter_timelines.py
"""

from repro.core import IsolationLevel, check_all_levels
from repro.db.config import DatabaseConfig, IsolationMode
from repro.workloads import CTwitterWorkload, collect_history


def main() -> None:
    modes = [
        IsolationMode.SERIALIZABLE,
        IsolationMode.CAUSAL,
        IsolationMode.READ_ATOMIC,
        IsolationMode.READ_COMMITTED,
    ]
    workload = CTwitterWorkload(num_users=30)
    print(f"{'store isolation':<18}" + "".join(f"{lvl.short_name:>8}" for lvl in IsolationLevel))
    print("-" * 42)
    for mode in modes:
        config = DatabaseConfig(
            isolation=mode,
            num_replicas=6,
            replication_lag=50.0,
            seed=11,
        )
        history = collect_history(
            workload, config, num_sessions=12, num_transactions=1200, seed=5
        )
        results = check_all_levels(history)
        row = f"{mode.value:<18}"
        for level in IsolationLevel:
            verdict = "pass" if results[level].is_consistent else "FAIL"
            row += f"{verdict:>8}"
        print(row)
    print()
    print("Reading the table: a row's FAIL entries are the isolation levels the")
    print("store does not provide; AWDIT pinpoints each violation with a witness")
    print("cycle (see examples/database_audit.py for witness output).")


if __name__ == "__main__":
    main()
