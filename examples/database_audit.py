#!/usr/bin/env python3
"""Audit a (simulated) production database for isolation bugs.

This example mirrors the black-box testing pipeline of the paper:

1. run a TPC-C-like workload against a replicated database configured for a
   given isolation level,
2. record the history of every session,
3. hand the history to AWDIT and ask whether it satisfies RC, RA, and CC,
4. print the anomaly witnesses when it does not.

Two databases are audited: a correct one, and one with an injected
"stale read" bug of the kind Jepsen reports keep finding in production
systems.  AWDIT certifies the former and produces concrete counterexample
cycles for the latter.

Run with::

    python examples/database_audit.py
"""

from repro.core import IsolationLevel, check
from repro.core.witnesses import format_report, summarize
from repro.db.config import BugRates, DatabaseConfig, IsolationMode
from repro.workloads import TPCCWorkload, collect_history


def audit(label: str, config: DatabaseConfig) -> None:
    print("=" * 72)
    print(f"Auditing {label} ({config.isolation.value}, {config.num_replicas} replicas)")
    history = collect_history(
        TPCCWorkload(num_warehouses=2, num_items=50),
        config,
        num_sessions=10,
        num_transactions=600,
        seed=2024,
    )
    print(f"  collected {history.describe()}")
    for level in IsolationLevel:
        result = check(history, level)
        verdict = "OK" if result.is_consistent else "ANOMALIES FOUND"
        print(f"  {level.short_name:3s}: {verdict:15s} ({result.elapsed_seconds * 1000:7.2f} ms)")
        if not result.is_consistent:
            counts = summarize(result.violations)
            for kind, count in counts.items():
                print(f"        {kind.value}: {count}")
            print("      first witnesses:")
            report = format_report(result.violations, limit=2)
            print("        " + report.replace("\n", "\n        "))
    print()


def main() -> None:
    correct = DatabaseConfig(
        name="cockroach-like",
        isolation=IsolationMode.SERIALIZABLE,
        num_replicas=3,
        replication_lag=6.0,
        seed=7,
    )
    buggy = DatabaseConfig(
        name="cockroach-like (buggy build)",
        isolation=IsolationMode.SERIALIZABLE,
        num_replicas=3,
        replication_lag=6.0,
        seed=7,
        bug_rates=BugRates(stale_read=0.02, aborted_read=0.01),
        abort_probability=0.05,
    )
    audit("a correct deployment", correct)
    audit("a deployment with an isolation bug", buggy)


if __name__ == "__main__":
    main()
