#!/usr/bin/env python3
"""Quickstart: build a small history by hand and test it against RC / RA / CC.

This reproduces the motivating example of the paper's Fig. 4: a sequence of
histories that are consistent at one isolation level but not at the next
stronger one, illustrating what each level permits.

Run with::

    python examples/quickstart.py
"""

from repro import (
    History,
    IsolationLevel,
    Transaction,
    check_all_levels,
    read,
    write,
)
from repro.core.witnesses import format_report


def fig_4b() -> History:
    """Fig. 4b of the paper: RC-consistent, RA-inconsistent (fractured read)."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2), write("y", 2)], label="t2")
    t3 = Transaction([read("x", 1), read("y", 2)], label="t3")
    return History.from_sessions([[t1, t2], [t3]])


def fig_4c() -> History:
    """Fig. 4c of the paper: RA-consistent, CC-inconsistent (lost causality)."""
    t1 = Transaction([write("x", 1)], label="t1")
    t2 = Transaction([write("x", 2)], label="t2")
    t3 = Transaction([read("x", 2), write("y", 3)], label="t3")
    t4 = Transaction([read("y", 3), read("x", 1)], label="t4")
    return History.from_sessions([[t1, t2], [t3], [t4]])


def main() -> None:
    for name, history in [("Fig. 4b", fig_4b()), ("Fig. 4c", fig_4c())]:
        print("=" * 72)
        print(f"{name}: {history.describe()}")
        print(history.pretty())
        print()
        for level, result in check_all_levels(history).items():
            print(f"  {level.short_name}: {'consistent' if result.is_consistent else 'VIOLATION'}"
                  f"  ({result.elapsed_seconds * 1000:.2f} ms)")
            if not result.is_consistent:
                report = format_report(result.violations, limit=3)
                print("    " + report.replace("\n", "\n    "))
        print()


if __name__ == "__main__":
    main()
