#!/usr/bin/env python3
"""Demonstrate the triangle-freeness reductions behind the paper's lower bounds.

Section 4 of the paper shows that a fast weak-isolation tester would give a
fast triangle detector: an undirected graph is turned into a history that is
consistent exactly when the graph is triangle-free.  This example builds both
a triangle-free graph and a graph with a planted triangle, runs all three
constructions (general, RA/two-session, RC/one-session), and uses AWDIT as a
triangle oracle.

Run with::

    python examples/lower_bound_reduction.py
"""

from repro.core import IsolationLevel, check
from repro.lowerbounds import (
    UndirectedGraph,
    find_triangle,
    general_reduction,
    ra_two_session_reduction,
    rc_single_session_reduction,
)
from repro.lowerbounds.triangles import random_graph


def describe(graph: UndirectedGraph, name: str) -> None:
    triangle = find_triangle(graph)
    print(f"{name}: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"triangle = {triangle}")

    constructions = [
        ("general (CC..RC range)", general_reduction(graph), IsolationLevel.READ_COMMITTED),
        ("RA, two sessions", ra_two_session_reduction(graph), IsolationLevel.READ_ATOMIC),
        ("RC, one session", rc_single_session_reduction(graph), IsolationLevel.READ_COMMITTED),
    ]
    for label, history, level in constructions:
        result = check(history, level)
        oracle = "triangle-free" if result.is_consistent else "has a triangle"
        print(f"  {label:<24} -> history {history.describe()}")
        print(f"  {'':<24}    tester verdict: {oracle}")
    print()


def main() -> None:
    triangle_free = random_graph(12, 0.5, seed=3, triangle_free=True)
    describe(triangle_free, "triangle-free random graph")

    with_triangle = random_graph(12, 0.5, seed=3, triangle_free=True)
    # Plant a triangle on three existing vertices.
    with_triangle.add_edge(0, 1)
    with_triangle.add_edge(1, 2)
    with_triangle.add_edge(0, 2)
    describe(with_triangle, "same graph with a planted triangle")


if __name__ == "__main__":
    main()
