"""Ablation benchmarks for the design choices DESIGN.md calls out.

Three ingredients give AWDIT its edge over exhaustive saturation:

1. *Minimal* commit-relation saturation for RC (Algorithm 1's two-element
   ``earliestWts`` stack) versus inferring an edge for every witnessing pair
   of reads (what the Plume-like TAP search does).
2. The per-session monotone ``lastWrite`` pointers for CC (Algorithm 3)
   versus materializing the full causal closure (the DBCop-like baseline).
3. The single-session linear fast path for RA (Theorem 1.6) versus the
   general ``O(n^{3/2})`` algorithm.

Each ablation benchmarks both sides on the same history and records the edge
counts / time ratios into ``results.json``.
"""

from __future__ import annotations

import pytest

from repro.baselines.dbcop import check_cc_dbcop
from repro.baselines.plume import check_plume
from repro.core import IsolationLevel, check
from repro.core.commit import CommitRelation
from repro.core.model import History, Transaction, write, read
from repro.core.ra import check_ra, check_ra_single_session
from repro.core.rc import check_rc, saturate_rc
from repro.core.read_consistency import check_read_consistency

from conftest import make_history

# Benchmark suites are opt-in (see pytest.ini): the marker is declared on
# the module itself so collection behaves identically no matter which
# directory pytest is invoked from.
pytestmark = pytest.mark.bench


class TestMinimalVsExhaustiveSaturation:
    def test_awdit_minimal_rc_saturation(self, benchmark, results):
        history = make_history("tpcc", "cockroach", sessions=25, transactions=1024)
        benchmark.group = "ablation: RC saturation"
        result = benchmark.pedantic(lambda: check_rc(history), rounds=2, iterations=1)
        assert result.is_consistent
        results.record(
            "ablation-rc",
            "awdit-minimal",
            {
                "seconds": round(benchmark.stats.stats.mean, 6),
                "inferred_edges": result.stats["inferred_edges"],
            },
        )

    def test_exhaustive_rc_saturation(self, benchmark, results):
        history = make_history("tpcc", "cockroach", sessions=25, transactions=1024)
        benchmark.group = "ablation: RC saturation"
        result = benchmark.pedantic(
            lambda: check_plume(history, IsolationLevel.READ_COMMITTED),
            rounds=2,
            iterations=1,
        )
        assert result.is_consistent
        results.record(
            "ablation-rc",
            "exhaustive",
            {"seconds": round(benchmark.stats.stats.mean, 6)},
        )

    def test_minimal_relation_is_smaller_than_axiom_instances(self, benchmark, results):
        """Count how many RC-axiom instances the minimal co' avoids materializing."""
        history = make_history("tpcc", "cockroach", sessions=25, transactions=512)

        def count():
            report = check_read_consistency(history)
            relation = CommitRelation(history)
            saturate_rc(history, relation, report.bad_reads)
            # Exhaustive count: every (earlier read, later read of another
            # writer that the earlier writer also writes) pair.
            exhaustive = 0
            for tid in history.committed:
                reads = [
                    (index, op, writer)
                    for writer, index, op in history.txn_read_froms(tid)
                    if history.transactions[writer].committed
                ]
                for position, (_i, _op, t2) in enumerate(reads):
                    for _j, op_x, t1 in reads[position + 1 :]:
                        if t1 != t2 and history.transactions[t2].writes_key(op_x.key):
                            exhaustive += 1
            return relation.num_inferred_edges, exhaustive

        minimal, exhaustive = benchmark.pedantic(count, rounds=1, iterations=1)
        results.record(
            "ablation-rc", "edge-counts", {"minimal": minimal, "axiom_instances": exhaustive}
        )
        assert minimal <= exhaustive


class TestPointerVsClosureForCC:
    def test_awdit_cc_pointers(self, benchmark, results):
        history = make_history("ctwitter", "cockroach", sessions=25, transactions=1024)
        benchmark.group = "ablation: CC saturation"
        result = benchmark.pedantic(
            lambda: check(history, IsolationLevel.CAUSAL_CONSISTENCY), rounds=2, iterations=1
        )
        assert result.is_consistent
        results.record(
            "ablation-cc", "awdit-pointers", round(benchmark.stats.stats.mean, 6)
        )

    def test_dbcop_explicit_closure(self, benchmark, results):
        history = make_history("ctwitter", "cockroach", sessions=25, transactions=1024)
        benchmark.group = "ablation: CC saturation"
        result = benchmark.pedantic(lambda: check_cc_dbcop(history), rounds=1, iterations=1)
        assert result.is_consistent
        results.record(
            "ablation-cc", "explicit-closure", round(benchmark.stats.stats.mean, 6)
        )


class TestSingleSessionFastPath:
    @staticmethod
    def _single_session_history(num_transactions=2500):
        transactions = []
        for i in range(num_transactions):
            key = f"k{i % 50}"
            transactions.append(
                Transaction([write(key, i * 2), read(key, i * 2)], label=f"t{i}")
            )
        return History.from_sessions([transactions])

    def test_linear_fast_path(self, benchmark, results):
        history = self._single_session_history()
        benchmark.group = "ablation: RA single session"
        result = benchmark.pedantic(
            lambda: check_ra_single_session(history), rounds=3, iterations=1
        )
        assert result.is_consistent
        results.record(
            "ablation-ra-1session", "fast-path", round(benchmark.stats.stats.mean, 6)
        )

    def test_general_algorithm(self, benchmark, results):
        history = self._single_session_history()
        benchmark.group = "ablation: RA single session"
        result = benchmark.pedantic(lambda: check_ra(history), rounds=3, iterations=1)
        assert result.is_consistent
        results.record(
            "ablation-ra-1session", "general", round(benchmark.stats.stats.mean, 6)
        )
