"""Vectorized saturation-kernel benchmarks and the cross-PR ``BENCH_7.json``.

PR 7 rebuilt the CC/RC/RA saturation passes on one numpy core
(:mod:`repro.core.compiled.kernels`) shared by the batch checkers, the
streaming fold's deferred probe flush, and the shard workers, because
``BENCH_5.json`` showed the saturation lap (0.31s of the 0.46s batch
check) and ``BENCH_6.json`` showed the fold clock-join lap (0.78s of the
1.67s pipeline) as the two remaining scalar hot loops.  This module
records the fig9-scale numbers the PR gates on:

* compiled batch CC must be >= 1.3x the BENCH_5 era number
  (``check_cc_seconds.compiled_batch``), compared under the calibration
  pairing described in :mod:`test_batch_ingestion`;
* the saturation phase lap on its own must be cut >= 2x vs the BENCH_5
  ``batch_cc_phase_seconds.saturation`` lap;
* the fold clock-join lap must be measurably reduced (>= 1.1x) vs the
  BENCH_6 ``stream_fold_phase_seconds.fold_clock_join`` lap;
* the default ``--batch-ops`` (4096) must never be the worst column of
  the batch_ops sweep.  The BENCH_6 sweep exposed a mid-size cliff --
  64-op batches (2.03s) were *slower* than single-op batches (1.98s)
  because they pay per-batch flush overhead without amortizing it, while
  4096 (1.80s) amortizes it away -- and this assertion keeps the shipped
  default off that cliff.

Measurement on a single-CPU dev container: wall seconds swing with the
container's throttling, so every gated round pairs one
:mod:`_calibration` kernel run with one measured run -- both see the
same machine state, and the per-round ratio factors the throttling out.

Everything lands in the repo-root ``BENCH_7.json``; the CI ``perf-guard``
job re-measures batch CC, the saturation lap, the pipeline, and the fold
against it.  The shard section is honest about CPU count: on a 1-CPU
container it records only the caveat, and the CI ``shard-scaling-bench``
job (a multi-core runner) re-runs this module and uploads its
``BENCH_7.json`` -- with real ``jobs=2`` shard numbers filled in -- as
an artifact.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest
from _calibration import calibration_seconds

from repro.core import IsolationLevel
from repro.core.compiled import kernels
from repro.core.compiled.checkers import (
    _relation_from_compiled,
    check_cc_compiled,
    check_read_consistency_compiled,
    compute_happens_before_compiled,
)
from repro.core.compiled.ir import compile_history
from repro.histories.formats import save_history
from repro.histories.formats._raw import DEFAULT_BATCH_OPS
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.shard import check_sharded
from repro.shard.parallel import effective_cpus
from repro.stream import check_stream_file

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH7_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_7.json"))

pytestmark = pytest.mark.bench

CC = IsolationLevel.CAUSAL_CONSISTENCY

#: The PR gates: minimum speedups over the committed-era numbers.
BATCH_GATE = 1.3
SATURATION_GATE = 2.0
CLOCK_JOIN_GATE = 1.1

#: Paired calibration/measurement rounds for the gated numbers.
ROUNDS = 5


def _committed(name: str):
    with open(os.path.abspath(os.path.join(_ROOT, name)), encoding="utf-8") as f:
        return json.load(f)


def _fig9_history(num_transactions: int = 15_000, seed: int = 11):
    """The fig9-scale history used by BENCH_2 through BENCH_6 (120k ops)."""
    return generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=num_transactions,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=seed,
        )
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_of(fn, repeats: int = 3) -> float:
    return min(_timed(fn) for _ in range(repeats))


def test_bench7_snapshot(tmp_path, results):
    """Record the vectorized-saturation perf snapshot in ``BENCH_7.json``."""
    bench5 = _committed("BENCH_5.json")
    bench6 = _committed("BENCH_6.json")
    batch_baseline = bench5["check_cc_seconds"]["compiled_batch"]
    saturation_baseline = bench5["batch_cc_phase_seconds"]["saturation"]
    bench5_cal = bench5["machine_calibration_seconds"]
    stream_baseline = bench6["check_cc_seconds"]["compiled_stream_pipeline"]
    clock_join_baseline = bench6["stream_fold_phase_seconds"]["fold_clock_join"]
    bench6_cal = bench6["machine_calibration_seconds"]

    if not kernels.HAVE_NUMPY:
        pytest.skip("vectorized kernels need numpy; fallback has no perf gate")

    history = _fig9_history()
    txns, ops = history.num_transactions, history.num_operations
    ch = compile_history(history)
    path = str(tmp_path / "large.plume")
    save_history(history, path, fmt="plume")

    # -- the batch gates: paired calibration/check rounds ----------------------
    # One profiled result set serves both batch gates: the phase laps are
    # a handful of perf_counter calls around work measured in tenths.
    rounds = []
    for _ in range(ROUNDS):
        cal = calibration_seconds(repeats=3)
        start = time.perf_counter()
        result = check_cc_compiled(ch)
        seconds = time.perf_counter() - start
        rounds.append((seconds, result.stats["saturation"], cal))
    batch_seconds = min(seconds for seconds, _, _ in rounds)
    saturation_seconds = min(lap for _, lap, _ in rounds)
    cal_seconds = min(cal for _, _, cal in rounds)
    # Per round, the committed baseline is rescaled by *that round's*
    # calibration before the ratio: both measurements saw the same
    # machine state, so throttling cancels out.
    batch_speedup = max(
        (batch_baseline * cal / bench5_cal) / seconds for seconds, _, cal in rounds
    )
    saturation_speedup = max(
        (saturation_baseline * cal / bench5_cal) / lap for _, lap, cal in rounds
    )
    kernel_used = result.stats["saturation_kernel"]

    # -- vectorized vs fallback, saturation pass in isolation ------------------
    report = check_read_consistency_compiled(ch)
    hb, _cycles = compute_happens_before_compiled(ch, report.bad_ops)

    def _saturate():
        relation = _relation_from_compiled(ch)
        kernels.saturate_cc_compiled(ch, relation, hb, report.bad_ops)
        return relation

    def _saturate_fallback():
        saved = kernels._np
        kernels._np = None
        try:
            return _saturate()
        finally:
            kernels._np = saved

    vectorized_lap = _best_of(_saturate)
    fallback_lap = _best_of(_saturate_fallback)
    co_appends = len(_saturate()._co_log)

    # -- multicore shard speedup (only where CPUs exist to measure it) ---------
    cpus = effective_cpus()
    if cpus >= 2:
        shard_jobs = min(4, cpus)
        shard_seconds = {
            str(jobs): round(
                _best_of(lambda j=jobs: check_sharded(ch, CC, jobs=j, mode="auto")), 4
            )
            for jobs in (1, shard_jobs)
        }
        shard_section = {
            "note": f"measured on this {cpus}-CPU runner; saturation tasks "
            "dispatch to the same vectorized-or-fallback kernels inside "
            "each worker",
            "cpus": cpus,
            "seconds_by_jobs": shard_seconds,
            "speedup": round(
                shard_seconds["1"] / shard_seconds[str(shard_jobs)], 3
            ),
        }
    else:
        # One visible CPU: a real speedup is unmeasurable here, but the
        # cost side of the ledger is -- force the worker pool anyway and
        # record what fork/IPC adds when two workers timeshare one CPU.
        # The committed numbers are honest about that (no speedup is
        # claimed); the CI shard-scaling-bench job re-runs this module on
        # a multi-core runner and uploads its BENCH_7.json artifact with
        # a real jobs=2 speedup in this section.
        from repro.shard import parallel as _parallel

        jobs1_seconds = _best_of(
            lambda: check_sharded(ch, CC, jobs=1, mode="auto")
        )
        saved_cpus = _parallel.effective_cpus
        _parallel.effective_cpus = lambda: 2
        try:
            jobs2_seconds = _best_of(
                lambda: check_sharded(ch, CC, jobs=2, mode="auto")
            )
        finally:
            _parallel.effective_cpus = saved_cpus
        shard_section = {
            "note": "this container exposes 1 CPU: jobs=2 was measured "
            "with the worker pool forced on, so two workers timeshare one "
            "core and the delta is the fork/IPC overhead a multicore "
            "machine amortizes -- NOT a speedup claim; the CI "
            "shard-scaling-bench job re-runs this module on a multi-core "
            "runner and uploads its BENCH_7.json (with a real jobs=2 "
            "speedup here) as an artifact",
            "cpus": cpus,
            "timeshared": True,
            "seconds_by_jobs": {
                "1": round(jobs1_seconds, 4),
                "2": round(jobs2_seconds, 4),
            },
            "fork_ipc_overhead": round(jobs2_seconds / jobs1_seconds, 3),
        }

    # The streaming pipeline is the unit under test below; a 120k-op
    # object history kept alive during the rounds makes every gen-2 GC
    # pass walk it and inflates the measurement by ~2x on this container.
    del history, ch, hb, report, result
    gc.collect()

    def _pipeline(**kwargs):
        return check_stream_file(path, CC, fmt="plume", engine="compiled", **kwargs)

    # -- the clock-join gate: paired calibration/pipeline rounds ---------------
    stream_rounds = []
    for _ in range(ROUNDS):
        cal = calibration_seconds(repeats=3)
        timings: dict = {}
        start = time.perf_counter()
        _pipeline(timings=timings)
        seconds = time.perf_counter() - start
        stream_rounds.append((seconds, dict(timings), cal))
    stream_seconds = min(seconds for seconds, _, _ in stream_rounds)
    clock_join_seconds = min(
        laps["fold_clock_join"] for _, laps, _ in stream_rounds
    )
    clock_join_speedup = max(
        (clock_join_baseline * cal / bench6_cal) / laps["fold_clock_join"]
        for _, laps, cal in stream_rounds
    )
    stream_speedup = max(
        (stream_baseline * cal / bench6_cal) / seconds
        for seconds, _, cal in stream_rounds
    )
    fold_laps = {
        key: round(value, 4)
        for key, value in min(stream_rounds, key=lambda r: r[0])[1].items()
    }

    # -- batch_ops sensitivity (same verdict for every value) ------------------
    by_batch_ops = {
        str(batch_ops): round(_best_of(lambda: _pipeline(batch_ops=batch_ops)), 4)
        for batch_ops in (1, 64, DEFAULT_BATCH_OPS, 65536)
    }

    snapshot = {
        "generated_by": "benchmarks/test_saturation_kernels.py::test_bench7_snapshot",
        "saturation_kernel": kernel_used,
        # Single-thread machine-speed reference: benchmarks/perf_guard.py
        # rescales the baselines below by this kernel's runtime ratio.
        "machine_calibration_seconds": round(cal_seconds, 4),
        "history": {
            "transactions": txns,
            "operations": ops,
            "sessions": 8,
            "mode": "serializable",
        },
        "check_cc_seconds": {
            "compiled_batch": round(batch_seconds, 4),
            "compiled_batch_pr5_baseline": batch_baseline,
            "pr5_baseline_calibration_seconds": bench5_cal,
            "batch_speedup": round(batch_speedup, 3),
            "compiled_stream_pipeline": round(stream_seconds, 4),
            "compiled_stream_pipeline_pr6_baseline": stream_baseline,
            "pr6_baseline_calibration_seconds": bench6_cal,
            "stream_speedup": round(stream_speedup, 3),
        },
        "batch_cc_phase_seconds": {
            "saturation": round(saturation_seconds, 4),
            "saturation_pr5_baseline": saturation_baseline,
            "saturation_speedup": round(saturation_speedup, 3),
        },
        "saturation_kernel_micro": {
            "note": "CC saturation pass in isolation on the fig9 IR; the "
            "fallback number times the pure-Python kernel the AWDIT_NO_NUMPY "
            "CI leg runs",
            "co_log_appends": co_appends,
            "vectorized_seconds": round(vectorized_lap, 4),
            "fallback_seconds": round(fallback_lap, 4),
            "vectorized_speedup": round(fallback_lap / vectorized_lap, 3),
        },
        "stream_fold_phase_seconds": {
            **fold_laps,
            "fold_clock_join_pr6_baseline": clock_join_baseline,
            "fold_clock_join_speedup": round(clock_join_speedup, 3),
        },
        "stream_cc_seconds_by_batch_ops": {
            "note": "best-of-3 wall seconds; the verdict is identical for "
            "every batch_ops value, only the flush amortization changes. "
            "The BENCH_6-era cliff (64 slower than 1) is why the default "
            "is asserted to never be the worst column",
            **by_batch_ops,
        },
        "shard_multicore": shard_section,
    }
    with open(BENCH7_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    results.record("bench7", "snapshot", snapshot)

    assert kernel_used == "vectorized", (
        f"numpy is importable but the batch check reported the "
        f"{kernel_used!r} kernel"
    )
    assert batch_speedup >= BATCH_GATE, (
        f"compiled batch CC must be >= {BATCH_GATE}x the BENCH_5 number "
        f"({batch_baseline}s at calibration {bench5_cal}s), best paired "
        f"round gave {batch_speedup:.2f}x ({batch_seconds:.3f}s at "
        f"calibration {cal_seconds:.4f}s)"
    )
    assert saturation_speedup >= SATURATION_GATE, (
        f"the saturation lap must be cut >= {SATURATION_GATE}x vs BENCH_5 "
        f"({saturation_baseline}s), best paired round gave "
        f"{saturation_speedup:.2f}x ({saturation_seconds:.3f}s)"
    )
    assert clock_join_speedup >= CLOCK_JOIN_GATE, (
        f"the fold clock-join lap must be reduced >= {CLOCK_JOIN_GATE}x vs "
        f"BENCH_6 ({clock_join_baseline}s), best paired round gave "
        f"{clock_join_speedup:.2f}x ({clock_join_seconds:.3f}s)"
    )
    worst = max(by_batch_ops.values())
    assert by_batch_ops[str(DEFAULT_BATCH_OPS)] < worst, (
        f"the default batch_ops ({DEFAULT_BATCH_OPS}) must never be the "
        f"worst sweep column: {by_batch_ops}"
    )
