"""Bounded-memory streaming: peak memory vs. history length, retire on/off.

The acceptance shape for watermark-based retirement
(:mod:`repro.core.compiled.retire`): on an arrival-order stream 5x the
fig9 scale, the retiring checker's streaming-phase peak memory stays
flat (within 15%) when the history doubles, while the non-retiring
checker's grows roughly linearly -- and both produce the same verdict.

Each fold runs in a subprocess that reports its peak RSS (``VmHWM``,
reset after the imports) right after the fold loop and *before*
:meth:`finalize` (the final acyclicity pass materializes the whole
frozen relation in either mode, so whole-process peaks would only
measure that batch step; tracemalloc is ~10x slower than the fold
itself at this scale, so RSS is the usable probe).

``test_bench8_snapshot`` records the curve in the repo-root
``BENCH_8.json`` together with the retiring/non-retiring pipeline
seconds on the base stream; :mod:`benchmarks.perf_guard` gates the
streaming pipeline and fold-phase timings against that snapshot.
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import sys
import time

import pytest

from _calibration import calibration_seconds

from repro.core import IsolationLevel
from repro.core.compiled.retire import RetirementPolicy
from repro.histories.formats import plume_text
from repro.histories.generator import RandomHistoryConfig, generate_random_stream
from repro.stream import check_stream_file

BENCH8_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_8.json")
)

pytestmark = pytest.mark.bench

CC = IsolationLevel.CAUSAL_CONSISTENCY

#: The base stream is 5x the fig9 history (75k transactions, ~600k
#: operations); the doubled stream is 10x (~1.2M operations).
BASE_TRANSACTIONS = 75_000

#: The default policy: the bench measures what ``--retire`` gives out of
#: the box, not a hand-tuned setting.
POLICY = RetirementPolicy()

#: Runs in a subprocess and prints one JSON line.  argv: history path,
#: "on"/"off".  The peak-RSS counter is reset after the imports (Linux
#: spawns the child with the parent's pages briefly mapped, so the raw
#: ``ru_maxrss`` would inherit the parent's high-water mark) and read
#: back as ``VmHWM`` right after the fold loop.
_FOLD_PROBE = """\
import json, resource, sys, time
from repro.core import IsolationLevel
from repro.core.compiled.online import CompiledIncrementalChecker
from repro.histories.formats import stream_raw_history

def peak_rss_kb():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

try:
    with open("/proc/self/clear_refs", "w") as handle:
        handle.write("5")
except OSError:
    pass
retire = None
if sys.argv[2] == "on":
    from repro.core.compiled.retire import RetirementPolicy
    retire = RetirementPolicy()
CC = IsolationLevel.CAUSAL_CONSISTENCY
checker = CompiledIncrementalChecker(levels=(CC,), retire=retire)
start = time.perf_counter()
for sid, (label, committed, ops) in stream_raw_history(sys.argv[1], fmt="plume"):
    checker.append_raw(sid, label, committed, ops)
fold_seconds = time.perf_counter() - start
rss_kb = peak_rss_kb()
stats = checker.live_stats()
result = checker.finalize()[CC]
stats["fold_rss_kb"] = rss_kb
stats["fold_seconds"] = round(fold_seconds, 3)
stats["consistent"] = result.is_consistent
stats["violations"] = len(result.violations)
print(json.dumps(stats))
"""


def _write_stream(path: str, num_transactions: int, seed: int = 11) -> int:
    """Write a fig9-shaped arrival-order stream; returns its operation count."""
    history, order = generate_random_stream(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=num_transactions,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=seed,
        )
    )
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(plume_text.dumps(history, order=order))
    return sum(len(t.operations) for t in history.transactions)


def _fold_probe(path: str, mode: str) -> dict:
    env = dict(os.environ)
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), os.pardir, "src"))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _FOLD_PROBE, path, mode],
        env=env,
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


class TestBoundedStreamingMemory:
    def test_bench8_snapshot(self, tmp_path):
        shapes = {}
        probes = {}
        for name, factor in (("base", 1), ("double", 2)):
            path = str(tmp_path / f"{name}.plume")
            transactions = BASE_TRANSACTIONS * factor
            operations = _write_stream(path, transactions)
            shapes[name] = {"transactions": transactions, "operations": operations}
            gc.collect()
            for mode in ("off", "on"):
                probe = _fold_probe(path, mode)
                # The stream is serializable: every run must agree it is
                # consistent, whether or not it retired.
                assert probe["consistent"] and probe["violations"] == 0
                probes[(name, mode)] = probe

        # Pipeline seconds on the base stream for the perf guard:
        # whole-file runs (parse + fold + finalize), best of 3.
        pipeline = {}
        base_path = str(tmp_path / "base.plume")
        for mode, retire in (("off", None), ("on", POLICY)):
            best, fold = float("inf"), float("inf")
            for _ in range(3):
                timings = {}
                start = time.perf_counter()
                result = check_stream_file(
                    base_path, CC, fmt="plume", retire=retire, timings=timings
                )
                best = min(best, time.perf_counter() - start)
                fold = min(fold, timings["fold"])
            assert result.is_consistent
            pipeline[mode] = {"pipeline": best, "fold": fold}

        peak_off_base = probes[("base", "off")]["fold_rss_kb"]
        peak_off_double = probes[("double", "off")]["fold_rss_kb"]
        peak_on_base = probes[("base", "on")]["fold_rss_kb"]
        peak_on_double = probes[("double", "on")]["fold_rss_kb"]

        # Retiring: flat within 15% as the history doubles.
        assert peak_on_double <= peak_on_base * 1.15
        # Non-retiring: grows roughly linearly (well beyond the 15% band).
        assert peak_off_double >= peak_off_base * 1.5
        # And retirement really ran at scale, in both runs.
        assert probes[("base", "on")]["retired_transactions"] > 0
        stats_double = probes[("double", "on")]
        assert stats_double["retired_transactions"] > BASE_TRANSACTIONS
        assert stats_double["retire_segments"] > 0

        snapshot = {
            "generated_by": (
                "benchmarks/test_retirement.py::"
                "TestBoundedStreamingMemory::test_bench8_snapshot"
            ),
            "machine_calibration_seconds": round(calibration_seconds(), 4),
            "policy": {"lag": POLICY.lag, "every": POLICY.every},
            "streams": shapes,
            "streaming_phase_peak_rss_kb": {
                "note": (
                    "peak RSS (VmHWM) right after the fold loop, before "
                    "finalize (the final acyclicity pass is O(history) in "
                    "either mode); 'growth' is double/base -- flat (<= 1.15) "
                    "with retirement, linear without"
                ),
                "retire_off": {
                    "base": peak_off_base,
                    "double": peak_off_double,
                    "growth": round(peak_off_double / peak_off_base, 3),
                },
                "retire_on": {
                    "base": peak_on_base,
                    "double": peak_on_double,
                    "growth": round(peak_on_double / peak_on_base, 3),
                },
            },
            "retire_counters_double": {
                key: stats_double[key]
                for key in (
                    "retired_transactions",
                    "retire_passes",
                    "remap_epochs",
                    "retire_segments",
                    "evicted_writes",
                    "spilled_edges",
                    "post_compaction_peak_resident",
                )
            },
            "check_cc_seconds": {
                "note": (
                    "whole-file streaming runs on the base (5x fig9) "
                    "arrival-order stream; perf_guard.py gates "
                    "compiled_stream_pipeline and the fold lap"
                ),
                "compiled_stream_pipeline": round(pipeline["off"]["pipeline"], 4),
                "compiled_stream_pipeline_retiring": round(
                    pipeline["on"]["pipeline"], 4
                ),
                "retirement_overhead": round(
                    pipeline["on"]["pipeline"] / pipeline["off"]["pipeline"], 3
                ),
            },
            "stream_fold_phase_seconds": {
                "fold": round(pipeline["off"]["fold"], 4),
                "fold_retiring": round(pipeline["on"]["fold"], 4),
            },
        }
        with open(BENCH8_PATH, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
