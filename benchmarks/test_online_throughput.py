"""Compiled vs object streaming throughput: the cross-PR ``BENCH_4.json``.

The compiled streaming core exists so that online checking stops paying the
object model's boxing tax: ``stream_raw_history`` hands the checker plain
tuples, keys and values intern to packed ints, and the CC pointers live in
flat arrays.  The acceptance gate of the compiled-streaming-core PR is that
streaming CC on the 120k-op fig9-scale history through
:class:`~repro.core.compiled.online.CompiledIncrementalChecker` runs at
>= 1.3x the object streaming path (parse included -- the pipelines the two
``awdit check --stream`` engines actually execute), recorded in the
repo-root ``BENCH_4.json``.

Also measured: the all-levels online pass, peak live-state footprint
(tracemalloc) of both streaming engines, and the checkpoint save/load
overhead at the default cadence.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import pytest

from repro.core import IsolationLevel
from repro.histories.formats import save_history, stream_history, stream_raw_history
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.stream import check_stream, check_stream_file

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH4_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_4.json"))

pytestmark = pytest.mark.bench

CC = IsolationLevel.CAUSAL_CONSISTENCY


def _fig9_history(num_transactions: int = 15_000, seed: int = 11):
    """The fig9-scale history used by BENCH_2/BENCH_3 (15k txns, ~120k ops)."""
    return generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=num_transactions,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=seed,
        )
    )


def _object_stream_cc(path: str):
    return check_stream(stream_history(path, fmt="plume"), CC)


def _compiled_stream_cc(path: str):
    return check_stream_file(path, CC, fmt="plume", engine="compiled")


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _peak_mem(fn):
    tracemalloc.start()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def test_bench4_snapshot(tmp_path, results):
    """Record the compiled-streaming-core perf snapshot in ``BENCH_4.json``."""
    history = _fig9_history()
    txns, ops = history.num_transactions, history.num_operations
    path = str(tmp_path / "large.plume")
    save_history(history, path, fmt="plume")

    # Interleave the engines, best of three, so machine noise cannot skew
    # one side (the BENCH_2 methodology).
    object_times = []
    compiled_times = []
    for _ in range(3):
        object_times.append(_timed(lambda: _object_stream_cc(path)))
        compiled_times.append(_timed(lambda: _compiled_stream_cc(path)))
    object_seconds = min(object_times)
    compiled_seconds = min(compiled_times)
    speedup = object_seconds / compiled_seconds

    object_result = _object_stream_cc(path)
    compiled_result = _compiled_stream_cc(path)
    assert compiled_result.is_consistent == object_result.is_consistent
    assert compiled_result.stats.get("inferred_edges") == object_result.stats.get(
        "inferred_edges"
    )

    # All-levels online pass (one stream, three verdicts).
    from repro.stream import CompiledIncrementalChecker

    def _all_levels():
        checker = CompiledIncrementalChecker()
        checker.extend_raw(stream_raw_history(path, "plume"))
        return checker.finalize()

    all_levels_seconds = _timed(_all_levels)

    # Peak streaming memory, both engines (tracemalloc, in-process proxy).
    _, object_peak = _peak_mem(lambda: _object_stream_cc(path))
    _, compiled_peak = _peak_mem(lambda: _compiled_stream_cc(path))

    # Checkpointing at the default cadence: the overhead users pay for
    # resumability.
    state = str(tmp_path / "state.awd")
    checkpoint_seconds = _timed(
        lambda: check_stream_file(path, CC, fmt="plume", checkpoint=state)
    )
    resume_seconds = _timed(
        lambda: check_stream_file(
            path, CC, fmt="plume", checkpoint=state, resume=True
        )
    )

    snapshot = {
        "generated_by": "benchmarks/test_online_throughput.py::test_bench4_snapshot",
        "history": {
            "transactions": txns,
            "operations": ops,
            "sessions": 8,
            "mode": "serializable",
        },
        "stream_cc_pipeline_seconds": {
            "object": round(object_seconds, 4),
            "compiled": round(compiled_seconds, 4),
            "compiled_speedup": round(speedup, 3),
        },
        "stream_pipeline_txns_per_sec": {
            "object": round(txns / object_seconds, 1),
            "compiled": round(txns / compiled_seconds, 1),
            "compiled_all_levels": round(txns / all_levels_seconds, 1),
        },
        "peak_streaming_mem_bytes": {
            "note": "tracemalloc peak (in-process RSS proxy), CC streaming "
            "pipeline on the 120k-op log",
            "object": object_peak,
            "compiled": compiled_peak,
            "compiled_over_object": round(compiled_peak / object_peak, 3),
        },
        "checkpointing": {
            "cadence_txns": 10_000,
            "checkpointed_run_seconds": round(checkpoint_seconds, 4),
            "resume_completed_run_seconds": round(resume_seconds, 4),
            "overhead_vs_plain": round(checkpoint_seconds / compiled_seconds, 3),
        },
    }
    with open(BENCH4_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    results.record("bench4", "snapshot", snapshot)

    assert speedup >= 1.3, (
        f"compiled streaming CC must be >=1.3x the object streaming path, "
        f"got {speedup:.2f}x"
    )


def test_streaming_engines_agree_on_anomalous_log(tmp_path):
    """Both streaming pipelines report identical violations on a dirty log."""
    history = generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=4_000,
            num_keys=300,
            min_ops_per_txn=4,
            max_ops_per_txn=8,
            read_fraction=0.5,
            mode="random_reads",
            seed=12,
        )
    )
    path = str(tmp_path / "anomalous.plume")
    save_history(history, path, fmt="plume")
    object_result = _object_stream_cc(path)
    compiled_result = _compiled_stream_cc(path)
    assert compiled_result.is_consistent == object_result.is_consistent
    assert [v.message for v in compiled_result.violations] == [
        v.message for v in object_result.violations
    ]
