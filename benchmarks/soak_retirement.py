"""Long-stream soak: ``--stream --retire`` must hold a hard memory ceiling.

Feeds a multi-hundred-thousand-operation arrival-order stream through
the compiled streaming checker with watermark-based retirement enabled
and fails (exit 1) when the streaming phase's peak RSS exceeds
``CEILING_KB``, when retirement did not actually run, or when the
verdict is wrong.  The generated stream is serializable, so the run
must come back consistent.

The peak-RSS counter (``VmHWM``) is reset after generation, so the
ceiling applies to the parse+fold phase alone -- the phase whose memory
retirement bounds.  The measured fold peak at this scale is ~90 MiB
(see BENCH_8.json); the ceiling leaves ~2.5x headroom for allocator and
platform variance while still catching any O(history) leak, which would
blow past it within the first half of the stream.

Run as ``python benchmarks/soak_retirement.py [transactions]`` (the CI
``long-stream-soak`` job; default 100k transactions, ~800k operations).
"""

from __future__ import annotations

import gc
import os
import resource
import sys
import tempfile
import time

from repro.core import IsolationLevel
from repro.core.compiled.online import CompiledIncrementalChecker
from repro.core.compiled.retire import RetirementPolicy
from repro.histories.formats import plume_text, stream_raw_history
from repro.histories.generator import RandomHistoryConfig, generate_random_stream

CEILING_KB = 256 * 1024  # 256 MiB on the streaming phase

CC = IsolationLevel.CAUSAL_CONSISTENCY


def _reset_peak_rss() -> None:
    try:
        with open("/proc/self/clear_refs", "w") as handle:
            handle.write("5")
    except OSError:
        pass


def _peak_rss_kb() -> int:
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def main(argv) -> int:
    transactions = int(argv[1]) if len(argv) > 1 else 100_000
    history, order = generate_random_stream(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=transactions,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=23,
        )
    )
    operations = sum(len(t.operations) for t in history.transactions)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "soak.plume")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(plume_text.dumps(history, order=order))
        del history, order
        gc.collect()
        _reset_peak_rss()

        checker = CompiledIncrementalChecker(levels=(CC,), retire=RetirementPolicy())
        start = time.perf_counter()
        for sid, (label, committed, ops) in stream_raw_history(path, fmt="plume"):
            checker.append_raw(sid, label, committed, ops)
        fold_seconds = time.perf_counter() - start
        peak_kb = _peak_rss_kb()
        stats = checker.live_stats()
        result = checker.finalize()[CC]

    print(
        f"soak: {transactions} txns / {operations} ops folded in "
        f"{fold_seconds:.1f}s; streaming-phase peak RSS "
        f"{peak_kb / 1024:.1f} MiB (ceiling {CEILING_KB / 1024:.0f} MiB)"
    )
    print(
        f"soak: retired {stats['retired_transactions']} txns in "
        f"{stats['retire_passes']} passes ({stats['retire_segments']} segments, "
        f"{stats['evicted_writes']} evicted writes, "
        f"{stats['spilled_edges']} spilled edges); post-compaction peak "
        f"{stats['post_compaction_peak_resident']} resident summaries"
    )

    failed = False
    if peak_kb > CEILING_KB:
        print("soak: FAIL -- streaming-phase peak RSS above the ceiling")
        failed = True
    if stats["retired_transactions"] < transactions // 2:
        print("soak: FAIL -- retirement barely ran; the watermark is stalling")
        failed = True
    if not result.is_consistent:
        print("soak: FAIL -- serializable stream reported inconsistent")
        failed = True
    if not failed:
        print("soak: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
