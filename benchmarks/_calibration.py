"""A fixed single-thread calibration kernel for cross-machine perf gating.

``BENCH_5.json`` records wall seconds measured on one machine; CI runners
are a different hardware class, so comparing absolute seconds against the
committed baselines would conflate "this runner is slower" with "the code
regressed".  The perf guard therefore scales the committed baselines by the
ratio of this kernel's runtime on the two machines: the kernel is
deterministic, dependency-free, and exercises the same primitive mix as the
checkers' hot loops (int hashing into dicts, flat appends, a C-level sort,
an indexing scan), so its runtime tracks single-thread Python speed rather
than any code under test.
"""

from __future__ import annotations

import time

_KERNEL_OPS = 200_000


def _kernel() -> int:
    acc = {}
    append_log = []
    log_append = append_log.append
    for i in range(_KERNEL_OPS):
        packed = ((i * 2654435761) & 0xFFFFF) << 32 | i
        if packed not in acc:
            acc[packed] = i
        log_append(packed)
    append_log.sort()
    total = 0
    previous = -1
    for value in append_log:
        if value != previous:
            total += value & 0xFFFF
            previous = value
    return total


def calibration_seconds(repeats: int = 5) -> float:
    """Best-of-``repeats`` wall seconds of the calibration kernel."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _kernel()
        best = min(best, time.perf_counter() - start)
    return best
