"""Fig. 8 reproduction: large-scale AWDIT vs Plume comparison.

The paper's large-scale experiment compares AWDIT against Plume (the only
baseline that survives the small-scale cut) on 198 histories collected from
three databases and three benchmarks with 50 or 100 sessions and up to 2^20
transactions, at each of the three weak isolation levels.  The result is a
scatter plot per level whose points lie well below the diagonal: an average
speedup of 80x/70x/36x over all histories and 245x/193x/62x over the ~20%
largest ones.

At reproduction scale the grid is smaller (two simulated databases, three
workloads, two sizes, two session counts) but the measured quantity is the
same: wall-clock checking time of AWDIT vs the Plume-like baseline per
(history, level) pair.  The geometric-mean speedup per level -- the paper's
headline number -- is accumulated into ``results.json`` by the final
aggregation benchmark.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines.plume import check_plume
from repro.core import IsolationLevel, check

from conftest import make_history

# Benchmark suites are opt-in (see pytest.ini): the marker is declared on
# the module itself so collection behaves identically no matter which
# directory pytest is invoked from.
pytestmark = pytest.mark.bench

DATABASES = ["postgres", "cockroach"]
WORKLOADS = ["tpcc", "ctwitter", "rubis"]
GRID = [
    # (sessions, transactions)
    (25, 512),
    (50, 1024),
]
LEVELS = [
    IsolationLevel.READ_COMMITTED,
    IsolationLevel.READ_ATOMIC,
    IsolationLevel.CAUSAL_CONSISTENCY,
]

_timings = {}


def _history_id(database, workload, sessions, transactions):
    return f"{database}/{workload}/k={sessions}/n={transactions}"


@pytest.mark.parametrize("database", DATABASES)
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("sessions,transactions", GRID)
@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.short_name)
@pytest.mark.parametrize("tester", ["awdit", "plume"])
def test_fig8_point(benchmark, results, tester, level, database, workload, sessions, transactions):
    """One point of the Fig. 8 scatter: one history, one level, one tester."""
    history = make_history(
        workload, database, sessions=sessions, transactions=transactions
    )
    benchmark.group = f"fig8 {level.short_name} {workload}@{database} n={transactions}"

    if tester == "awdit":
        runner = lambda: check(history, level)
    else:
        runner = lambda: check_plume(history, level)
    rounds = 1
    result = benchmark.pedantic(runner, rounds=rounds, iterations=1, warmup_rounds=0)
    assert result.is_consistent

    key = (_history_id(database, workload, sessions, transactions), level.short_name)
    _timings.setdefault(key, {})[tester] = benchmark.stats.stats.mean
    results.record(
        "fig8",
        f"{key[0]}/{key[1]}/{tester}",
        round(benchmark.stats.stats.mean, 6),
    )
    timing = _timings[key]
    if len(timing) == 2:
        speedup = timing["plume"] / max(timing["awdit"], 1e-9)
        results.record("fig8-speedups", f"{key[0]}/{key[1]}", round(speedup, 3))


def test_fig8_geometric_mean_speedup(benchmark, results):
    """Aggregate the per-point speedups into the paper's headline statistic."""

    def aggregate():
        per_level = {}
        for (history_id, level), timing in _timings.items():
            if "awdit" in timing and "plume" in timing:
                per_level.setdefault(level, []).append(
                    timing["plume"] / max(timing["awdit"], 1e-9)
                )
        return {
            level: math.exp(sum(math.log(s) for s in speedups) / len(speedups))
            for level, speedups in per_level.items()
            if speedups
        }

    means = benchmark.pedantic(aggregate, rounds=1, iterations=1)
    for level, value in means.items():
        results.record("fig8-geomean-speedup", level, round(value, 3))
    # Shape check: AWDIT should win clearly at CC (where its O(n·k) algorithm
    # replaces the baseline's per-read writer scans) and stay in the same
    # ballpark elsewhere.  At this reproduction's (pure-Python, scaled-down)
    # sizes the RC/RA advantage is smaller than the paper's 80-245x -- the
    # asymptotic gap widens with history size; see EXPERIMENTS.md.
    assert means.get("CC", 1.0) >= 0.9, "expected AWDIT to be at least competitive at CC"
    for level, value in means.items():
        assert value >= 0.5, f"unexpectedly large slowdown for {level}"
