"""Sharded-checking scaling benchmark: the cross-PR ``BENCH_3.json`` snapshot.

Measures the sharded engine against the single-process compiled engine on
the fig9-scale (120k-operation) CC benchmark, for ``jobs`` in {1, 2, 4}:

* ``mode="auto"`` -- what ``awdit check --jobs N`` actually does.  On a
  multi-CPU machine this forks N workers; on a single-CPU machine it
  detects that forking cannot help and falls back to the sequential loops,
  so ``--jobs`` is never a pessimization.
* ``mode="fork"`` -- the forked pipeline unconditionally, recorded for
  transparency (on one CPU the workers timeshare a core and the transport
  overhead is visible; on real multicore hardware this is the speedup
  path).

The snapshot also records the previous PR's single-process compiled wall
clock (from the committed ``BENCH_2.json``) so the trajectory -- what a
user upgrading across PRs observes for ``check --jobs 4`` -- is explicit.

Acceptance gates (environment-aware, asserted below):

* sharded verdicts/witnesses byte-identical to the compiled engine;
* on multicore machines: forked ``jobs=4`` beats this build's
  single-process compiled engine outright;
* on a single-CPU machine: auto-mode ``jobs=4`` stays within 5% of this
  build's compiled engine (the fallback costs nothing) *and* improves on
  the single-process compiled wall clock recorded by the previous PR
  (this PR's saturation/toposort optimizations are shared code).
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.core import IsolationLevel, check
from repro.core.compiled.ir import compile_history
from repro.histories.formats import load_compiled, save_history
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.shard import check_sharded, load_compiled_sharded, will_parallelize
from repro.shard.parallel import effective_cpus

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH2_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_2.json"))
BENCH3_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_3.json"))

pytestmark = pytest.mark.bench

CC = IsolationLevel.CAUSAL_CONSISTENCY


def _fig9_history(num_transactions: int = 15_000, seed: int = 11):
    """The fig9-scale history used by BENCH_2 (15k txns, ~120k ops)."""
    return generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=num_transactions,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=seed,
        )
    )


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_sharded_parity_on_fig9_scale():
    """Identical verdict/witnesses at benchmark scale, forked and inline."""
    ch = compile_history(_fig9_history(num_transactions=4_000))
    compiled = check(ch, CC)
    for jobs, mode in ((2, "fork"), (4, "fork"), (4, "inline")):
        sharded = check_sharded(ch, CC, jobs=jobs, mode=mode)
        assert sharded.is_consistent == compiled.is_consistent
        assert [v.describe() for v in sharded.violations] == [
            v.describe() for v in compiled.violations
        ]
        assert sharded.stats.get("inferred_edges") == compiled.stats.get(
            "inferred_edges"
        )


def test_bench3_snapshot(tmp_path, results):
    """Record the per-PR perf snapshot in the repo-root ``BENCH_3.json``."""
    cpus = effective_cpus()
    history = _fig9_history()
    txns, ops = history.num_transactions, history.num_operations
    ch = compile_history(history)

    # -- check-phase wall clock, engines interleaved (best of three) ----------
    compiled_seconds = _best_of(lambda: check(ch, CC, engine="compiled"))
    auto = {
        jobs: _best_of(lambda j=jobs: check_sharded(ch, CC, jobs=j, mode="auto"))
        for jobs in (1, 2, 4)
    }
    forked = {
        jobs: _best_of(lambda j=jobs: check_sharded(ch, CC, jobs=j, mode="fork"))
        for jobs in (2, 4)
    }

    # -- results must agree before any time is trusted -------------------------
    base = check(ch, CC, engine="compiled")
    for jobs in (1, 2, 4):
        sharded = check_sharded(ch, CC, jobs=jobs, mode="auto")
        assert sharded.is_consistent == base.is_consistent

    # -- sharded ingest pipeline (parse -> merge -> check), file-to-verdict ----
    path = tmp_path / "fig9.plume"
    save_history(history, str(path), fmt="plume")
    start = time.perf_counter()
    check(load_compiled(str(path), fmt="plume"), CC)
    single_pipeline = time.perf_counter() - start
    start = time.perf_counter()
    # Mirror `awdit check --jobs 4`: the shard-merge ingest is only paid
    # when the check phase will actually fork.
    if will_parallelize(4):
        sharded_ch = load_compiled_sharded(str(path), 4, fmt="plume")
    else:
        sharded_ch = load_compiled(str(path), fmt="plume")
    check_sharded(sharded_ch, CC, jobs=4, mode="auto")
    sharded_pipeline = time.perf_counter() - start

    # -- prior-PR reference (the committed BENCH_2 snapshot) -------------------
    bench2_compiled = None
    if os.path.exists(BENCH2_PATH):
        with open(BENCH2_PATH, "r", encoding="utf-8") as handle:
            bench2_compiled = (
                json.load(handle).get("check_cc_seconds", {}).get("compiled")
            )

    snapshot = {
        "generated_by": "benchmarks/test_shard_scaling.py::test_bench3_snapshot",
        "machine": {
            "effective_cpus": cpus,
            "note": (
                "mode='auto' forks only when >1 CPU is available; on a "
                "single-CPU machine it falls back to the identical "
                "sequential loops, so --jobs is never a pessimization"
            ),
        },
        "history": {
            "transactions": txns,
            "operations": ops,
            "sessions": 8,
            "mode": "serializable",
        },
        "check_cc_seconds": {
            "compiled_single_process": round(compiled_seconds, 4),
            "sharded_auto": {str(j): round(s, 4) for j, s in auto.items()},
            "sharded_forked": {str(j): round(s, 4) for j, s in forked.items()},
            "compiled_single_process_prev_pr": bench2_compiled,
            "jobs4_vs_prev_pr_speedup": (
                round(bench2_compiled / auto[4], 3) if bench2_compiled else None
            ),
            "jobs4_vs_this_pr_compiled": round(auto[4] / compiled_seconds, 3),
        },
        "pipeline_txns_per_sec": {
            "compiled_single_process": round(txns / single_pipeline, 1),
            "sharded_jobs4": round(txns / sharded_pipeline, 1),
        },
    }
    with open(BENCH3_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    results.record("bench3", "snapshot", snapshot)

    if cpus > 1:
        # Real parallel hardware: forked jobs=4 must beat single-process.
        assert forked[4] < compiled_seconds, (
            f"forked jobs=4 ({forked[4]:.3f}s) must beat the single-process "
            f"compiled engine ({compiled_seconds:.3f}s) on {cpus} CPUs"
        )
    else:
        # Single CPU: the auto fallback must cost (essentially) nothing...
        assert auto[4] <= 1.05 * compiled_seconds, (
            f"auto jobs=4 ({auto[4]:.3f}s) must not regress the compiled "
            f"engine ({compiled_seconds:.3f}s) on one CPU"
        )
        # ...and the trajectory must still improve on the single-process
        # compiled wall clock the previous PR recorded.
        if bench2_compiled is not None:
            assert auto[4] < bench2_compiled, (
                f"jobs=4 ({auto[4]:.3f}s) must improve on the previous PR's "
                f"single-process compiled time ({bench2_compiled:.3f}s)"
            )
