"""Columnar-ingestion benchmarks and the cross-PR ``BENCH_6.json`` snapshot.

PR 6 refactored the streaming ingestion pipeline from per-op tuples to
columnar record batches (``RecordBatch`` -> bulk intern -> batched fold),
because ``BENCH_5.json`` showed the fold -- not the finalize -- dominating
the 1.45s streaming CC pipeline.  This module records the fig9-scale
numbers the PR gates on:

* compiled streaming CC (parse included) must be >= 1.3x the PR 5 era
  number committed in ``BENCH_5.json``
  (``check_cc_seconds.compiled_stream_pipeline``), compared under the
  calibration pairing described below;
* peak streaming memory must stay within 10% of the PR 5 era committed
  peak (the batch layer holds at most one ``batch_ops`` column set live).

Measurement on a single-CPU dev container: wall seconds swing with the
container's throttling, so every round pairs one :mod:`_calibration`
kernel run with one pipeline run -- both see the same machine state, and
the per-round ratio factors the throttling out.  The gate takes the best
round, the same best-of principle ``_best_of`` applies to raw seconds.

Everything lands in the repo-root ``BENCH_6.json``; the CI ``perf-guard``
job re-measures the pipeline and the fold phase against it.
"""

from __future__ import annotations

import gc
import json
import os
import time
import tracemalloc

import pytest
from _calibration import calibration_seconds

from repro.core import IsolationLevel
from repro.histories.formats import save_history
from repro.histories.formats._raw import DEFAULT_BATCH_OPS
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.stream import check_stream_file

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH6_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_6.json"))

pytestmark = pytest.mark.bench

CC = IsolationLevel.CAUSAL_CONSISTENCY

#: The PR gate: minimum streaming-CC speedup over the PR 5 era number.
STREAM_GATE = 1.3

#: Paired calibration/pipeline rounds for the gate measurement.
ROUNDS = 5


def _committed(name: str):
    with open(os.path.abspath(os.path.join(_ROOT, name)), encoding="utf-8") as f:
        return json.load(f)


def _fig9_history(num_transactions: int = 15_000, seed: int = 11):
    """The fig9-scale history used by BENCH_2 through BENCH_5 (120k ops)."""
    return generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=num_transactions,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=seed,
        )
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_of(fn, repeats: int = 3) -> float:
    return min(_timed(fn) for _ in range(repeats))


def _peak_mem(fn):
    tracemalloc.start()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def test_bench6_snapshot(tmp_path, results):
    """Record the columnar-ingestion perf snapshot in ``BENCH_6.json``."""
    bench5 = _committed("BENCH_5.json")
    stream_baseline = bench5["check_cc_seconds"]["compiled_stream_pipeline"]
    baseline_cal = bench5["machine_calibration_seconds"]
    stream_mem_baseline = bench5["peak_checking_mem_bytes"]["compiled_stream"]

    history = _fig9_history()
    txns, ops = history.num_transactions, history.num_operations
    path = str(tmp_path / "large.plume")
    save_history(history, path, fmt="plume")
    # The streaming pipeline is the unit under test; a 120k-op object
    # history kept alive during the rounds makes every gen-2 GC pass walk
    # it and inflates the measurement by ~2x on this container.
    del history
    gc.collect()

    def _pipeline(**kwargs):
        return check_stream_file(path, CC, fmt="plume", engine="compiled", **kwargs)

    # -- the PR gate: paired calibration/pipeline rounds -----------------------
    rounds = []
    for _ in range(ROUNDS):
        cal = calibration_seconds(repeats=3)
        rounds.append((_timed(_pipeline), cal))
    stream_seconds = min(seconds for seconds, _ in rounds)
    cal_seconds = min(cal for _, cal in rounds)
    # Each round's pipeline run is compared against the PR 5 baseline
    # rescaled by *that round's* calibration: both measurements saw the
    # same machine state, so throttling cancels out of the ratio.
    stream_speedup = max(
        (stream_baseline * cal / baseline_cal) / seconds for seconds, cal in rounds
    )

    # -- batch_ops sensitivity (same verdict for every value) ------------------
    by_batch_ops = {
        str(batch_ops): round(_best_of(lambda: _pipeline(batch_ops=batch_ops)), 4)
        for batch_ops in (1, 64, DEFAULT_BATCH_OPS, 65536)
    }

    # -- fold sub-laps (the --profile split, naming the next hot spot) ---------
    timings: dict = {}
    _pipeline(timings=timings)
    fold_laps = {key: round(value, 4) for key, value in timings.items()}

    # -- peak streaming memory vs the per-op era -------------------------------
    _, stream_peak = _peak_mem(_pipeline)

    # -- honest single-CPU --jobs observation ----------------------------------
    # This container exposes one CPU, so byte-range parse workers can only
    # add fork/IPC overhead here; the multicore speedup lives in the CI
    # shard-scaling-bench artifacts (see the note below).  Never copy a
    # number into this section that was not actually measured.
    jobs_seconds = {
        str(jobs): round(_best_of(lambda: _pipeline(jobs=jobs)), 4)
        for jobs in (1, 2)
    }

    snapshot = {
        "generated_by": "benchmarks/test_batch_ingestion.py::test_bench6_snapshot",
        # Single-thread machine-speed reference: benchmarks/perf_guard.py
        # rescales the baselines below by this kernel's runtime ratio.
        "machine_calibration_seconds": round(cal_seconds, 4),
        "history": {
            "transactions": txns,
            "operations": ops,
            "sessions": 8,
            "mode": "serializable",
        },
        "check_cc_seconds": {
            "compiled_stream_pipeline": round(stream_seconds, 4),
            "compiled_stream_pipeline_pr5_baseline": stream_baseline,
            "pr5_baseline_calibration_seconds": baseline_cal,
            # Best paired-round speedup: per round, (baseline rescaled by
            # that round's calibration) / that round's pipeline seconds.
            "stream_speedup": round(stream_speedup, 3),
        },
        "stream_cc_seconds_by_batch_ops": {
            "note": "best-of-3 wall seconds; the verdict is identical for "
            "every batch_ops value, only the fold amortization changes",
            **by_batch_ops,
        },
        "stream_fold_phase_seconds": fold_laps,
        "peak_streaming_mem_bytes": {
            "note": "tracemalloc peak, CC streaming pipeline on the "
            "120k-op fig9 log",
            "compiled_stream": stream_peak,
            "compiled_stream_pr5_baseline": stream_mem_baseline,
        },
        "stream_jobs_seconds_single_cpu": {
            "note": "measured on a 1-CPU container where parse workers can "
            "only add overhead; multicore --jobs numbers come from the CI "
            "shard-scaling-bench artifacts (BENCH_3/BENCH_4 uploads), "
            "never from this machine",
            **jobs_seconds,
        },
    }
    with open(BENCH6_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    results.record("bench6", "snapshot", snapshot)

    assert stream_speedup >= STREAM_GATE, (
        f"compiled streaming CC must be >= {STREAM_GATE}x the PR 5 number "
        f"({stream_baseline}s at calibration {baseline_cal}s), best paired "
        f"round gave {stream_speedup:.2f}x ({stream_seconds:.3f}s at "
        f"calibration {cal_seconds:.4f}s)"
    )
    assert stream_peak <= stream_mem_baseline * 1.10, (
        f"streaming CC peak {stream_peak} exceeds the per-op era "
        f"{stream_mem_baseline} by more than 10%"
    )
