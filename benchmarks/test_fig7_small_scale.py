"""Fig. 7 reproduction: small-scale comparison of all weak-isolation testers.

The paper's small-scale experiment runs every tester at the CC isolation
level on histories from three benchmarks (RUBiS, C-Twitter, TPC-C) collected
from CockroachDB with 50 sessions, scaling the number of transactions, with a
10-minute timeout.  DBCop, CausalC+, TCC-Mono, and PolySI scale poorly, while
AWDIT and Plume "run almost instantaneously".

This harness reproduces the shape at laptop scale: the same tester line-up on
the same three workloads (collected from the simulated CockroachDB-like
store), with the transaction counts scaled down and each slow tester capped
at the size where it would otherwise dominate the run (the analogue of the
paper's timeouts).  The pytest-benchmark table, grouped by workload and size,
is the figure: AWDIT and the Plume-like baseline stay in the milliseconds
while the saturation-, Datalog-, and SAT-based testers blow up.
"""

from __future__ import annotations

import pytest

from repro.baselines import BASELINE_REGISTRY
from repro.core import IsolationLevel, check

from conftest import make_history

# Benchmark suites are opt-in (see pytest.ini): the marker is declared on
# the module itself so collection behaves identically no matter which
# directory pytest is invoked from.
pytestmark = pytest.mark.bench

WORKLOADS = ["rubis", "ctwitter", "tpcc"]
SIZES = [64, 128, 256]
SESSIONS = 20

#: Largest history each tester is run on, mirroring the paper's timeouts.
SIZE_CAPS = {
    "awdit": max(SIZES),
    "plume": max(SIZES),
    "dbcop": 256,
    "tcc-mono": 256,
    "causalc+": 128,
    "polysi": 128,
}

TESTERS = ["awdit", "plume", "dbcop", "tcc-mono", "causalc+", "polysi"]


def _run(tester: str, history):
    if tester == "awdit":
        return check(history, IsolationLevel.CAUSAL_CONSISTENCY)
    return BASELINE_REGISTRY[tester](history, IsolationLevel.CAUSAL_CONSISTENCY)


@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("tester", TESTERS)
def test_fig7_cc_checking(benchmark, results, tester, workload, size):
    """One cell of Fig. 7: tester x workload x #transactions at the CC level."""
    if size > SIZE_CAPS[tester]:
        pytest.skip(f"{tester} capped at {SIZE_CAPS[tester]} transactions (paper: timeout)")
    history = make_history(workload, "cockroach", sessions=SESSIONS, transactions=size)
    benchmark.group = f"fig7 {workload} n={size}"
    result = benchmark.pedantic(
        _run, args=(tester, history), rounds=1, iterations=1, warmup_rounds=0
    )
    # All histories come from a strongly isolated store: every tester must
    # accept them (PolySI checks the stronger SI, which also holds here).
    assert result.is_consistent
    results.record(
        "fig7",
        f"{workload}/n={size}/{tester}",
        round(benchmark.stats.stats.mean, 6),
    )
