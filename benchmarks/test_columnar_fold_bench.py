"""Columnar fold-state benchmarks and the cross-PR ``BENCH_10.json``.

PR 10 retired the per-transaction object heap from
``CompiledIncrementalChecker``: resident state is structure-of-arrays
columns indexed by ``tid - txns_base`` (flags/session/summary-run
arrays), the park queue is ``kernels.ParkQueue`` (one flat ``array('q')``
of interleaved pairs per packed wid), and the CC clocks are two flat
row-major matrices joined by ``kernels.join_clocks``.  This module
records what that bought, measured the way the earlier snapshots
measure (paired calibration/measurement rounds so container throttling
cancels out):

* the end-to-end ``fold`` lap vs the committed BENCH_9 number -- the
  tentpole gate, >= 1.25x paired.  The win is allocator- and GC-shaped:
  no ``_Txn``/``_Read`` objects, no per-transaction dicts for the hb
  clocks or wr maps, so the fold loop stops paying per-record allocation
  and the collector stops walking ~100k live objects per gen-2 pass;
* the ``batch_ops`` sweep re-measured (identical verdict per column);
* the ``--gc-tune`` experiment, honestly: fold seconds and collector
  interruptions with and without ``gc.freeze()`` + a raised gen-2
  threshold.  With the object heap gone the collector has little left
  to walk, so the further win is expected to be small -- the snapshot
  records whatever it is;
* ``join_clocks`` in isolation on a wide (64-session) synthetic join,
  vectorized vs its own fallback.  The fig9 stream itself runs the
  scalar path on purpose (8 sessions x 64 writer rows is below the
  ``_MIN_JOIN_CELLS`` cutoff), so the stream's ``join_kernel`` stat
  says ``fallback`` without that being a regression -- the micro bench
  plus the ``perf_guard`` tripwire cover the vectorized path;
* the streaming-phase peak RSS (VmHWM, subprocess probe identical to
  BENCH_8's) with retirement on, gated no worse than BENCH_8's retiring
  baseline -- columnar state must not trade speed for memory;
* the 5x-fig9 arrival-stream fold laps that ``benchmarks/perf_guard.py``
  re-measures and gates against.

Everything lands in the repo-root ``BENCH_10.json``.
"""

from __future__ import annotations

import gc
import json
import os
import subprocess
import sys
import time
from array import array

import pytest
from _calibration import calibration_seconds

from repro.core import IsolationLevel
from repro.core.compiled import kernels
from repro.histories.formats import plume_text, save_history
from repro.histories.formats._raw import DEFAULT_BATCH_OPS
from repro.histories.generator import (
    RandomHistoryConfig,
    generate_random_history,
    generate_random_stream,
)
from repro.stream import check_stream_file

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH10_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_10.json"))

pytestmark = pytest.mark.bench

CC = IsolationLevel.CAUSAL_CONSISTENCY

#: The tentpole gate: the whole fold lap, best calibration-paired round
#: vs the committed BENCH_9 lap.
FOLD_GATE = 1.25

#: The wide-join micro bench only has to beat its own fallback -- the
#: vectorized path exists for many-session streams, not for fig9.
JOIN_MICRO_GATE = 1.05

ROUNDS = 5

#: BENCH_8's RSS probe, verbatim shape: reset the peak-RSS counter after
#: the imports, fold the stream, read VmHWM back *before* finalize.
_FOLD_PROBE = """\
import json, resource, sys, time
from repro.core import IsolationLevel
from repro.core.compiled.online import CompiledIncrementalChecker
from repro.histories.formats import stream_raw_history

def peak_rss_kb():
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

try:
    with open("/proc/self/clear_refs", "w") as handle:
        handle.write("5")
except OSError:
    pass
retire = None
if sys.argv[2] == "on":
    from repro.core.compiled.retire import RetirementPolicy
    retire = RetirementPolicy()
CC = IsolationLevel.CAUSAL_CONSISTENCY
checker = CompiledIncrementalChecker(levels=(CC,), retire=retire)
start = time.perf_counter()
for sid, (label, committed, ops) in stream_raw_history(sys.argv[1], fmt="plume"):
    checker.append_raw(sid, label, committed, ops)
fold_seconds = time.perf_counter() - start
rss_kb = peak_rss_kb()
stats = checker.live_stats()
result = checker.finalize()[CC]
stats["fold_rss_kb"] = rss_kb
stats["fold_seconds"] = round(fold_seconds, 3)
stats["consistent"] = result.is_consistent
print(json.dumps(stats))
"""


def _committed(name: str):
    with open(os.path.abspath(os.path.join(_ROOT, name)), encoding="utf-8") as f:
        return json.load(f)


def _fig9_history(num_transactions: int = 15_000, seed: int = 11):
    return generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=num_transactions,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=seed,
        )
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_of(fn, repeats: int = 3) -> float:
    return min(_timed(fn) for _ in range(repeats))


def _rss_probe(stream_path: str, retire: str) -> dict:
    proc = subprocess.run(
        [sys.executable, "-c", _FOLD_PROBE, stream_path, retire],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
    )
    assert proc.returncode == 0, proc.stderr
    return json.loads(proc.stdout)


def _join_micro(repeats: int = 200) -> dict:
    """Time the wide-join kernel against its own fallback, same inputs."""
    stride = 64
    rows = list(range(64))
    hb = array("q", ((j * s * 2654435761) % 199 - 1 for j in rows for s in range(stride)))
    sc = array("q", ((s * 40503) % 151 - 1 for s in range(stride)))
    wsids = [j % stride for j in rows]
    wsidxs = [(j * 7919) % 211 for j in rows]

    def run_vectorized():
        for _ in range(repeats):
            row, vectorized = kernels.join_clocks(hb, stride, sc, 0, rows, wsids, wsidxs)
            assert vectorized
        return row

    def run_fallback():
        for _ in range(repeats):
            row = kernels._join_clocks_fallback(hb, stride, sc, 0, rows, wsids, wsidxs)
        return row

    assert list(run_vectorized()) == list(run_fallback())
    vec = _best_of(run_vectorized)
    fb = _best_of(run_fallback)
    return {
        "note": "64 sessions x 64 writer rows (4096 cells, above "
        "_MIN_JOIN_CELLS) x 200 joins; the fig9 stream itself stays on "
        "the scalar path by design (8-session joins are below the "
        "cutoff), so this is where the vectorized join is measured",
        "cells": 64 * stride,
        "vectorized_seconds": round(vec, 4),
        "fallback_seconds": round(fb, 4),
        "vectorized_speedup": round(fb / vec, 3),
    }


def test_bench10_snapshot(tmp_path, results):
    """Record the columnar-fold perf snapshot in ``BENCH_10.json``."""
    bench9 = _committed("BENCH_9.json")
    fold_baseline = bench9["stream_fold_phase_seconds"]["fold"]
    bench9_cal = bench9["machine_calibration_seconds"]
    sweep_baseline = bench9["stream_cc_seconds_by_batch_ops"]
    bench8 = _committed("BENCH_8.json")
    rss_baseline_kb = bench8["streaming_phase_peak_rss_kb"]["retire_on"]["base"]

    if not kernels.HAVE_NUMPY:
        pytest.skip("the vectorized kernels need numpy; no perf gate")

    history = _fig9_history()
    txns, ops = history.num_transactions, history.num_operations
    path = str(tmp_path / "fig9.plume")
    save_history(history, path, fmt="plume")
    del history
    gc.collect()

    def _pipeline(**kwargs):
        return check_stream_file(path, CC, fmt="plume", engine="compiled", **kwargs)

    # -- the fold gate: paired calibration/pipeline rounds ---------------------
    rounds = []
    for _ in range(ROUNDS):
        cal = calibration_seconds(repeats=3)
        timings: dict = {}
        result = _pipeline(timings=timings)
        rounds.append((dict(timings), cal))
    fold_seconds = min(laps["fold"] for laps, _ in rounds)
    fold_speedup = max(
        (fold_baseline * cal / bench9_cal) / laps["fold"] for laps, cal in rounds
    )
    cal_seconds = min(cal for _, cal in rounds)
    fold_laps = {
        key: round(value, 4)
        for key, value in min(rounds, key=lambda r: r[0]["fold"])[0].items()
        if key.startswith("fold") or key == "parse"
    }
    join_kernel = result.stats.get("join_kernel")

    # -- the --gc-tune experiment, before/after --------------------------------
    gc_rows = {}
    for label, tune in (("off", False), ("on", True)):
        best = None
        for _ in range(3):
            timings = {}
            _pipeline(timings=timings, gc_tune=tune)
            if best is None or timings["fold"] < best["fold"]:
                best = timings
        gc_rows[label] = {
            "fold_seconds": round(best["fold"], 4),
            "fold_gc_collections": best["fold_gc_collections"],
        }

    # -- batch_ops sensitivity (same verdict for every value) ------------------
    by_batch_ops = {
        str(batch_ops): round(_best_of(lambda: _pipeline(batch_ops=batch_ops)), 4)
        for batch_ops in (1, 64, DEFAULT_BATCH_OPS, 65536)
    }

    # -- join_clocks in isolation ----------------------------------------------
    join_micro = _join_micro()

    # -- the perf-guard workload + the RSS probe: 5x-fig9 arrival stream -------
    stream_history, order = generate_random_stream(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=75_000,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=11,
        )
    )
    stream_txns = stream_history.num_transactions
    stream_ops = stream_history.num_operations
    stream_path = str(tmp_path / "fig9x5_arrival.plume")
    with open(stream_path, "w", encoding="utf-8") as handle:
        handle.write(plume_text.dumps(stream_history, order=order))
    del stream_history, order
    gc.collect()
    stream_fold = float("inf")
    stream_classify = float("inf")
    for _ in range(3):
        timings = {}
        check_stream_file(
            stream_path, CC, fmt="plume", engine="compiled", timings=timings
        )
        stream_fold = min(stream_fold, timings["fold"])
        stream_classify = min(stream_classify, timings["fold_classify"])

    retiring = _rss_probe(stream_path, "on")
    assert retiring["consistent"] and retiring["retired_transactions"] > 0
    rss_on_kb = retiring["fold_rss_kb"]

    snapshot = {
        "generated_by":
            "benchmarks/test_columnar_fold_bench.py::test_bench10_snapshot",
        "machine_calibration_seconds": round(cal_seconds, 4),
        "history": {
            "transactions": txns,
            "operations": ops,
            "sessions": 8,
            "mode": "serializable",
        },
        "stream_fold_phase_seconds": {
            "note": "fig9 file-order stream; fold_speedup is the best "
            "calibration-paired round of the whole fold lap vs the BENCH_9 "
            "lap.  The columnar rewrite removes per-transaction objects "
            "and dicts from every sub-lap at once (allocation, pointer "
            "chasing, GC traversal), which is why the end-to-end lap moves "
            "rather than one sub-lap",
            **fold_laps,
            "fold_pr9_baseline": fold_baseline,
            "pr9_baseline_calibration_seconds": bench9_cal,
            "fold_speedup": round(fold_speedup, 3),
        },
        "join_kernel_stream": join_kernel,
        "join_clocks_micro": join_micro,
        "gc_tune_fig9": {
            "note": "--gc-tune (gc.freeze after the first folded batch + "
            "gen-2 threshold x8, restored before exit) on the fig9 stream; "
            "with the object heap gone the collector has little left to "
            "walk, so the delta is honestly small -- the flag stays "
            "default-off",
            **gc_rows,
        },
        "stream_cc_seconds_by_batch_ops": {
            "note": "best-of-3 wall seconds; identical verdict per column",
            "pr9_baseline": {
                key: sweep_baseline[key]
                for key in ("1", "64", str(DEFAULT_BATCH_OPS), "65536")
            },
            **by_batch_ops,
        },
        "streaming_phase_peak_rss_kb": {
            "note": "peak RSS (VmHWM) right after the fold loop on the "
            "5x-fig9 arrival stream with --retire, BENCH_8's probe "
            "verbatim; gated no worse than BENCH_8's retiring baseline",
            "retire_on_base": rss_on_kb,
            "bench8_retire_on_base": rss_baseline_kb,
        },
        "stream_5x_fold_phase_seconds": {
            "note": "5x-fig9 arrival-order stream (the perf-guard "
            "workload, regenerated from seed 11); perf_guard re-measures "
            "the fold lap against this",
            "transactions": stream_txns,
            "operations": stream_ops,
            "fold": round(stream_fold, 4),
            "fold_classify": round(stream_classify, 4),
        },
    }
    with open(BENCH10_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    results.record("bench10", "snapshot", snapshot)

    assert fold_speedup >= FOLD_GATE, (
        f"the columnar fold must beat BENCH_9's fold lap by {FOLD_GATE}x "
        f"paired ({fold_baseline}s at calibration {bench9_cal}s); best "
        f"round gave {fold_speedup:.2f}x ({fold_seconds:.3f}s at "
        f"calibration {cal_seconds:.4f}s)"
    )
    assert join_micro["vectorized_speedup"] >= JOIN_MICRO_GATE, (
        f"join_clocks must beat its own fallback on a wide join: "
        f"{join_micro}"
    )
    assert rss_on_kb <= rss_baseline_kb, (
        f"columnar state must not regress the retiring streaming peak: "
        f"{rss_on_kb} kB vs BENCH_8's {rss_baseline_kb} kB"
    )
    worst = max(by_batch_ops.values())
    assert by_batch_ops[str(DEFAULT_BATCH_OPS)] < worst, (
        f"the default batch_ops ({DEFAULT_BATCH_OPS}) must never be the "
        f"worst sweep column: {by_batch_ops}"
    )
