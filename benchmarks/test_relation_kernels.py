"""Relation-core microbenchmarks and the cross-PR ``BENCH_5.json`` snapshot.

The frozen-CSR relation core exists so that the saturation and acyclicity
passes stop paying per-edge hash/label costs: the hot loops append packed
ints to flat logs, one freeze (sort + dedup) builds the CSR rows, and every
kernel (Tarjan SCC, Kahn toposort, cycle extraction) iterates flat slices.
This module measures the layer in isolation -- freeze, SCC, and saturation
on synthetic dense/sparse edge sets, vectorized vs fallback -- and records
the fig9-scale pipeline numbers the PR gates on:

* compiled batch CC must be >= 1.25x the PR 4 era number committed in
  ``BENCH_3.json`` (``check_cc_seconds.compiled_single_process``);
* compiled streaming CC (parse included) must be >= 1.15x the number
  committed in ``BENCH_4.json`` (``stream_cc_pipeline_seconds.compiled``);
* peak checking memory must not exceed the packed-dict era's committed
  peaks (``BENCH_2.json`` batch, ``BENCH_4.json`` streaming).

Everything lands in the repo-root ``BENCH_5.json``.
"""

from __future__ import annotations

import json
import os
import random
import time
import tracemalloc

import pytest
from _calibration import calibration_seconds

from repro.core import IsolationLevel, check
from repro.core.compiled.checkers import (
    _relation_from_compiled,
    check_cc_compiled,
    check_read_consistency_compiled,
    compute_happens_before_compiled,
    saturate_cc_compiled,
)
from repro.core.compiled.ir import compile_history
from repro.graph import csr
from repro.graph.csr import freeze_packed, scc_frozen, toposort_frozen
from repro.graph.digraph import EDGE_SHIFT
from repro.histories.formats import load_compiled, save_history
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.stream import check_stream_file

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH5_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_5.json"))

pytestmark = pytest.mark.bench

CC = IsolationLevel.CAUSAL_CONSISTENCY

#: The PR gates: minimum speedups over the committed PR 4 era numbers.
BATCH_GATE = 1.25
STREAM_GATE = 1.15


def _committed(name: str):
    with open(os.path.abspath(os.path.join(_ROOT, name)), encoding="utf-8") as f:
        return json.load(f)


def _fig9_history(num_transactions: int = 15_000, seed: int = 11):
    """The fig9-scale history used by BENCH_2/BENCH_3/BENCH_4 (120k ops)."""
    return generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=num_transactions,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=seed,
        )
    )


def _best_of(fn, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _peak_mem(fn):
    tracemalloc.start()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def _synthetic_edges(num_vertices: int, num_edges: int, seed: int):
    """A packed-edge log with duplicates, like a saturation pass emits."""
    rng = random.Random(seed)
    edges = []
    for _ in range(num_edges):
        src = rng.randrange(num_vertices)
        dst = rng.randrange(num_vertices)
        edges.append((src << EDGE_SHIFT) | dst)
    # ~20% duplicated appends: the saturators re-attempt edges freely.
    edges.extend(rng.choices(edges, k=num_edges // 5))
    return edges


def _fallback(fn, *args):
    saved = csr._np
    csr._np = None
    try:
        return fn(*args)
    finally:
        csr._np = saved


def test_bench5_snapshot(tmp_path, results):
    """Record the frozen-CSR relation-core perf snapshot in ``BENCH_5.json``."""
    bench2 = _committed("BENCH_2.json")
    bench3 = _committed("BENCH_3.json")
    bench4 = _committed("BENCH_4.json")
    batch_baseline = bench3["check_cc_seconds"]["compiled_single_process"]
    stream_baseline = bench4["stream_cc_pipeline_seconds"]["compiled"]
    batch_mem_baseline = bench2["peak_checking_mem_bytes"]["compiled"]
    stream_mem_baseline = bench4["peak_streaming_mem_bytes"]["compiled"]

    history = _fig9_history()
    txns, ops = history.num_transactions, history.num_operations
    ch = compile_history(history)
    path = str(tmp_path / "large.plume")
    save_history(history, path, fmt="plume")

    # -- fig9 pipeline numbers (the PR gates) ----------------------------------
    batch_seconds = _best_of(lambda: check_cc_compiled(ch), repeats=5)
    stream_seconds = _best_of(
        lambda: check_stream_file(path, CC, fmt="plume", engine="compiled"),
        repeats=5,
    )
    batch_speedup = batch_baseline / batch_seconds
    stream_speedup = stream_baseline / stream_seconds

    result = check_cc_compiled(ch)
    phase = {
        k: round(result.stats[k], 4)
        for k in ("happens_before", "saturation", "freeze", "acyclicity", "witness")
        if k in result.stats
    }

    # -- peak checking memory vs the packed-dict era ---------------------------
    _, stream_peak = _peak_mem(
        lambda: check_stream_file(path, CC, fmt="plume", engine="compiled")
    )
    small = RandomHistoryConfig(
        num_sessions=8,
        num_transactions=15_000,
        num_keys=500,
        min_ops_per_txn=2,
        max_ops_per_txn=3,
        read_fraction=0.5,
        mode="serializable",
        seed=11,
    )
    small_path = str(tmp_path / "small.plume")
    save_history(generate_random_history(small), small_path, fmt="plume")
    _, batch_peak = _peak_mem(
        lambda: check(load_compiled(small_path, fmt="plume"), CC)
    )

    # -- relation-kernel microbenchmarks (synthetic edge sets) -----------------
    micro = {}
    for label, num_vertices, num_edges in (
        ("sparse_50k_vertices_200k_edges", 50_000, 200_000),
        ("dense_2k_vertices_200k_edges", 2_000, 200_000),
    ):
        edges = _synthetic_edges(num_vertices, num_edges, seed=7)
        frozen = freeze_packed(num_vertices, (edges,))
        micro[label] = {
            "appends": len(edges),
            "distinct_edges": frozen.num_edges,
            "freeze_seconds": round(
                _best_of(lambda: freeze_packed(num_vertices, (edges,))), 4
            ),
            "freeze_fallback_seconds": round(
                _best_of(lambda: _fallback(freeze_packed, num_vertices, (edges,))),
                4,
            ),
            "scc_seconds": round(_best_of(lambda: scc_frozen(frozen)), 4),
            "toposort_seconds": round(_best_of(lambda: toposort_frozen(frozen)), 4),
        }

    report = check_read_consistency_compiled(ch)
    hb, _cycles = compute_happens_before_compiled(ch, report.bad_ops)

    def _saturate():
        relation = _relation_from_compiled(ch)
        saturate_cc_compiled(ch, relation, hb, report.bad_ops)
        return relation

    saturation_seconds = _best_of(_saturate)
    co_appends = len(_saturate()._co_log)
    micro["fig9_cc_saturation"] = {
        "co_log_appends": co_appends,
        "seconds": round(saturation_seconds, 4),
        "appends_per_sec": round(co_appends / saturation_seconds, 1),
    }

    snapshot = {
        "generated_by": "benchmarks/test_relation_kernels.py::test_bench5_snapshot",
        "numpy_freeze": csr.HAVE_NUMPY,
        # Single-thread machine-speed reference: benchmarks/perf_guard.py
        # rescales the baselines below by this kernel's runtime ratio, so a
        # CI runner of a different hardware class gates against what its
        # own hardware should achieve.
        "machine_calibration_seconds": round(calibration_seconds(), 4),
        "history": {
            "transactions": txns,
            "operations": ops,
            "sessions": 8,
            "mode": "serializable",
        },
        "check_cc_seconds": {
            "compiled_batch": round(batch_seconds, 4),
            "compiled_batch_pr4_baseline": batch_baseline,
            "batch_speedup": round(batch_speedup, 3),
            "compiled_stream_pipeline": round(stream_seconds, 4),
            "compiled_stream_pipeline_pr4_baseline": stream_baseline,
            "stream_speedup": round(stream_speedup, 3),
        },
        "batch_cc_phase_seconds": phase,
        "peak_checking_mem_bytes": {
            "note": "tracemalloc peaks; batch on the BENCH_2 small-transaction "
            "log, streaming on the 120k-op fig9 log (pipeline)",
            "compiled_batch_small_log": batch_peak,
            "compiled_batch_small_log_pr4_baseline": batch_mem_baseline,
            "compiled_stream": stream_peak,
            "compiled_stream_pr4_baseline": stream_mem_baseline,
        },
        "relation_kernels": micro,
    }
    with open(BENCH5_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    results.record("bench5", "snapshot", snapshot)

    assert batch_speedup >= BATCH_GATE, (
        f"compiled batch CC must be >= {BATCH_GATE}x the PR 4 number "
        f"({batch_baseline}s), got {batch_seconds:.3f}s ({batch_speedup:.2f}x)"
    )
    assert stream_speedup >= STREAM_GATE, (
        f"compiled streaming CC must be >= {STREAM_GATE}x the PR 4 number "
        f"({stream_baseline}s), got {stream_seconds:.3f}s ({stream_speedup:.2f}x)"
    )
    assert batch_peak <= batch_mem_baseline, (
        f"batch CC peak {batch_peak} exceeds the packed-dict era "
        f"{batch_mem_baseline}"
    )
    assert stream_peak <= stream_mem_baseline, (
        f"streaming CC peak {stream_peak} exceeds the packed-dict era "
        f"{stream_mem_baseline}"
    )


def test_fallback_freeze_matches_vectorized_on_synthetic_sets():
    """The CI-runner (no numpy) freeze produces bit-identical CSR rows."""
    for num_vertices, num_edges in ((5_000, 20_000), (200, 20_000)):
        edges = _synthetic_edges(num_vertices, num_edges, seed=3)
        vectorized = freeze_packed(num_vertices, (edges,))
        fallback = _fallback(freeze_packed, num_vertices, (edges,))
        assert fallback.offsets == vectorized.offsets
        assert fallback.targets == vectorized.targets
