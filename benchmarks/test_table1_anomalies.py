"""Table 1 reproduction: isolation anomalies reported by AWDIT and Plume.

The paper's Table 1 lists eight histories (TPC-C on CockroachDB and
PostgreSQL, various sizes and session counts) in which anomalies were found:
future reads and causality cycles.  AWDIT reports all of them; Plume misses
three (one due to a 2-hour timeout on the largest history, two due to a
timeout/crash at the RA and CC levels).

Real database bugs cannot be summoned on demand, so this reproduction builds
the table's rows synthetically: TPC-C histories are collected from the
simulated databases with the row's size and session count, and the row's
anomalies are injected as self-contained gadgets
(:func:`repro.histories.generator.inject_anomaly`).  Each benchmark then
measures AWDIT detecting the anomaly and asserts that the reported violation
kinds match the row, also recording whether the Plume-like baseline finds
them (it does here -- the misses in the paper are resource exhaustion, which
a scaled-down run cannot reproduce faithfully).
"""

from __future__ import annotations

import random

import pytest

from repro.baselines.plume import check_plume
from repro.core import IsolationLevel, check
from repro.core.violations import ViolationKind
from repro.db.profiles import profile_by_name, with_overrides
from repro.histories.generator import inject_anomaly
from repro.workloads import TPCCWorkload, collect_history

from conftest import make_history

# Benchmark suites are opt-in (see pytest.ini): the marker is declared on
# the module itself so collection behaves identically no matter which
# directory pytest is invoked from.
pytestmark = pytest.mark.bench

#: (history id, size, sessions, database, injected anomalies) -- Table 1 rows.
TABLE1_ROWS = [
    ("H1", 512, 40, "cockroach", (ViolationKind.FUTURE_READ,)),
    ("H2", 512, 30, "cockroach", (ViolationKind.FUTURE_READ, ViolationKind.CAUSALITY_CYCLE)),
    ("H3", 256, 20, "postgres", (ViolationKind.FUTURE_READ,)),
    ("H4", 384, 20, "postgres", (ViolationKind.FUTURE_READ, ViolationKind.CAUSALITY_CYCLE)),
    ("H5", 512, 40, "postgres", (ViolationKind.FUTURE_READ,)),
    ("H6", 512, 30, "postgres", (ViolationKind.FUTURE_READ,)),
    ("H7", 640, 40, "postgres", (ViolationKind.FUTURE_READ,)),
    ("H8", 1024, 40, "postgres", (ViolationKind.CAUSALITY_CYCLE,)),
]


def _anomalous_history(row):
    name, size, sessions, database, anomalies = row
    history = collect_history(
        TPCCWorkload(num_warehouses=2, num_items=40),
        with_overrides(profile_by_name(database), seed=hash(name) % 1000),
        num_sessions=sessions,
        num_transactions=size,
        seed=hash(name) % 1000,
    )
    rng = random.Random(len(name))
    for kind in anomalies:
        history = inject_anomaly(history, kind, rng=rng)
    return history


@pytest.mark.parametrize("row", TABLE1_ROWS, ids=[row[0] for row in TABLE1_ROWS])
def test_table1_awdit_reports_each_anomaly(benchmark, results, row):
    """One Table 1 row: AWDIT finds and classifies every injected anomaly."""
    name, size, sessions, database, anomalies = row
    history = _anomalous_history(row)
    benchmark.group = "table1 awdit"
    result = benchmark.pedantic(
        lambda: check(history, IsolationLevel.CAUSAL_CONSISTENCY),
        rounds=1,
        iterations=1,
    )
    found = set(result.violation_kinds())
    assert set(anomalies) <= found, f"{name}: expected {anomalies}, found {found}"
    plume_found = set(
        check_plume(history, IsolationLevel.CAUSAL_CONSISTENCY).violation_kinds()
    )
    results.record(
        "table1",
        name,
        {
            "size": size,
            "sessions": sessions,
            "database": database,
            "violations": sorted(kind.value for kind in anomalies),
            "awdit_reported": sorted(kind.value for kind in found),
            "plume_reported": sorted(kind.value for kind in plume_found),
            "awdit_seconds": round(benchmark.stats.stats.mean, 6),
        },
    )


def test_table1_clean_histories_have_no_false_positives(benchmark, results):
    """Control row: the same pipeline without injection reports nothing."""
    history = make_history("tpcc", "postgres", sessions=30, transactions=256)
    benchmark.group = "table1 awdit"
    result = benchmark.pedantic(
        lambda: check(history, IsolationLevel.CAUSAL_CONSISTENCY),
        rounds=1,
        iterations=1,
    )
    assert result.is_consistent
    results.record("table1", "control", {"violations": [], "awdit_reported": []})
