"""Batched read-resolution benchmarks and the cross-PR ``BENCH_9.json``.

PR 9 replaced the scalar per-read probe loop inside
``CompiledIncrementalChecker.append_batch`` with
``kernels.resolve_reads``: reads are packed as ``(kid << 32) | vid`` and
answered by one searchsorted over the :class:`WritesIndex` flat mirror
of the writes registry, then bulk-partitioned into fast path / slow path
/ park queue.  This module records what that actually bought, measured
the same way :mod:`test_saturation_kernels` measures (paired
calibration/measurement rounds so the container's throttling cancels
out):

* the fold's ``fold_classify`` lap vs the committed BENCH_7 number.  The
  kernel removes the per-read dict probes, but the lap also contains the
  park/rebind bookkeeping, the per-transaction fold dispatch, and the
  interpreter's share of gen-2 GC passes -- none of which vectorize --
  so the end-to-end lap improves modestly (~1.1-1.2x) rather than the
  2x+ a pure-probe lap would show.  The gate is therefore an honest
  no-regression floor (>= 1.0x paired), not a 1.5x claim the measurement
  cannot back;
* the resolve step in isolation: every ``resolve_reads`` call during one
  pipeline run is timed against ``_resolve_reads_fallback`` on the
  identical inputs, which isolates the kernel from the fold around it;
* the re-measured ``batch_ops`` sweep.  BENCH_7 recorded the mid-size
  cliff (64-op batches slower than *single-op* batches, 2.2982s vs
  1.8679s) because mid-size batches paid the per-batch flush without
  amortizing it; the batched resolver moved that work out of the
  per-read loop and the sweep must now be monotone at 64 vs 1.  The
  flip side is recorded too: single-op batches pay the kernel's fixed
  per-batch overhead without amortization and are *slower* than in
  BENCH_7 -- the sweep note says so rather than hiding the column;
* the 5x-fig9 arrival stream (75k transactions, ~600k operations --
  BENCH_8's guard workload) fold and classify laps, which
  ``benchmarks/perf_guard.py`` re-measures and gates against.

Everything lands in the repo-root ``BENCH_9.json``.
"""

from __future__ import annotations

import gc
import json
import os
import time

import pytest
from _calibration import calibration_seconds

from repro.core import IsolationLevel
from repro.core.compiled import kernels
from repro.histories.formats import plume_text, save_history
from repro.histories.formats._raw import DEFAULT_BATCH_OPS
from repro.histories.generator import (
    RandomHistoryConfig,
    generate_random_history,
    generate_random_stream,
)
from repro.stream import check_stream_file

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH9_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_9.json"))

pytestmark = pytest.mark.bench

CC = IsolationLevel.CAUSAL_CONSISTENCY

#: The honest gates (see the module docstring for why 1.5x is not one).
#: The classify gate is a regression tripwire, not a speedup claim: the
#: lap is partly GC/allocator-bound, so the calibration pairing cancels
#: less of the machine noise than it does for the pure-compute laps and
#: the floor carries the same 25% tolerance ``perf_guard.py`` uses.
CLASSIFY_GATE = 0.8
RESOLVE_MICRO_GATE = 1.05

ROUNDS = 5


def _committed(name: str):
    with open(os.path.abspath(os.path.join(_ROOT, name)), encoding="utf-8") as f:
        return json.load(f)


def _fig9_history(num_transactions: int = 15_000, seed: int = 11):
    return generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=num_transactions,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=seed,
        )
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def _best_of(fn, repeats: int = 3) -> float:
    return min(_timed(fn) for _ in range(repeats))


class _ResolveMicro:
    """Times every resolve call against the fallback on identical inputs."""

    def __init__(self):
        self.vectorized = 0.0
        self.fallback = 0.0
        self.calls = 0
        self._real = kernels.resolve_reads

    def __enter__(self):
        real = self._real

        def timed(index, writes, committed_of, kid_col, vid_col, kinds,
                  txn_end, committed_col, tid0):
            start = time.perf_counter()
            res = real(index, writes, committed_of, kid_col, vid_col, kinds,
                       txn_end, committed_col, tid0)
            self.vectorized += time.perf_counter() - start
            start = time.perf_counter()
            kernels._resolve_reads_fallback(
                writes, committed_of, kid_col, vid_col, kinds, txn_end,
                committed_col, tid0,
            )
            self.fallback += time.perf_counter() - start
            self.calls += 1
            return res

        kernels.resolve_reads = timed
        return self

    def __exit__(self, *exc):
        kernels.resolve_reads = self._real


def test_bench9_snapshot(tmp_path, results):
    """Record the batched-read-resolution perf snapshot in ``BENCH_9.json``."""
    bench7 = _committed("BENCH_7.json")
    classify_baseline = bench7["stream_fold_phase_seconds"]["fold_classify"]
    fold_baseline = bench7["stream_fold_phase_seconds"]["fold"]
    sweep_baseline = bench7["stream_cc_seconds_by_batch_ops"]
    bench7_cal = bench7["machine_calibration_seconds"]

    if not kernels.HAVE_NUMPY:
        pytest.skip("vectorized resolve kernel needs numpy; no perf gate")

    history = _fig9_history()
    txns, ops = history.num_transactions, history.num_operations
    path = str(tmp_path / "fig9.plume")
    save_history(history, path, fmt="plume")
    # Same recording conditions as BENCH_7: don't let gen-2 GC walk a
    # 120k-op dead history during the measured rounds.
    del history
    gc.collect()

    def _pipeline(**kwargs):
        return check_stream_file(path, CC, fmt="plume", engine="compiled", **kwargs)

    # -- the classify gate: paired calibration/pipeline rounds -----------------
    rounds = []
    for _ in range(ROUNDS):
        cal = calibration_seconds(repeats=3)
        timings: dict = {}
        start = time.perf_counter()
        result = _pipeline(timings=timings)
        seconds = time.perf_counter() - start
        rounds.append((seconds, dict(timings), cal))
    classify_seconds = min(laps["fold_classify"] for _, laps, _ in rounds)
    classify_speedup = max(
        (classify_baseline * cal / bench7_cal) / laps["fold_classify"]
        for _, laps, cal in rounds
    )
    fold_speedup = max(
        (fold_baseline * cal / bench7_cal) / laps["fold"] for _, laps, cal in rounds
    )
    cal_seconds = min(cal for _, _, cal in rounds)
    fold_laps = {
        key: round(value, 4)
        for key, value in min(rounds, key=lambda r: r[0])[1].items()
    }
    kernel_used = result.stats["classify_kernel"]
    counters = {
        name: result.stats[name]
        for name in ("resolve_fast", "resolve_slow", "resolve_parked",
                     "resolve_rebound")
    }

    # -- the resolve step in isolation -----------------------------------------
    with _ResolveMicro() as micro:
        _pipeline()

    # -- batch_ops sensitivity (same verdict for every value) ------------------
    by_batch_ops = {
        str(batch_ops): round(_best_of(lambda: _pipeline(batch_ops=batch_ops)), 4)
        for batch_ops in (1, 64, DEFAULT_BATCH_OPS, 65536)
    }

    # -- the perf-guard workload: 5x-fig9 arrival stream ------------------------
    stream_history, order = generate_random_stream(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=75_000,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=11,
        )
    )
    stream_txns = stream_history.num_transactions
    stream_ops = stream_history.num_operations
    stream_path = str(tmp_path / "fig9x5_arrival.plume")
    with open(stream_path, "w", encoding="utf-8") as handle:
        handle.write(plume_text.dumps(stream_history, order=order))
    del stream_history, order
    gc.collect()
    stream_fold = float("inf")
    stream_classify = float("inf")
    for _ in range(3):
        timings = {}
        check_stream_file(
            stream_path, CC, fmt="plume", engine="compiled", timings=timings
        )
        stream_fold = min(stream_fold, timings["fold"])
        stream_classify = min(stream_classify, timings["fold_classify"])

    snapshot = {
        "generated_by":
            "benchmarks/test_resolve_kernel_bench.py::test_bench9_snapshot",
        "classify_kernel": kernel_used,
        "machine_calibration_seconds": round(cal_seconds, 4),
        "history": {
            "transactions": txns,
            "operations": ops,
            "sessions": 8,
            "mode": "serializable",
        },
        "stream_fold_phase_seconds": {
            "note": "fig9 file-order stream; fold_classify_speedup is the "
            "best calibration-paired round vs the BENCH_7 lap.  The batched "
            "resolver removes the per-read dict probes but the lap keeps "
            "the park/rebind bookkeeping, fold dispatch, and the "
            "interpreter's gen-2 GC share, so the end-to-end win is modest "
            "by design of the measurement -- resolve_kernel_micro isolates "
            "the step the PR vectorized",
            **fold_laps,
            "fold_classify_pr7_baseline": classify_baseline,
            "fold_pr7_baseline": fold_baseline,
            "pr7_baseline_calibration_seconds": bench7_cal,
            "fold_classify_speedup": round(classify_speedup, 3),
            "fold_speedup": round(fold_speedup, 3),
        },
        "resolve_kernel_micro": {
            "note": "every resolve_reads call of one pipeline run timed "
            "against _resolve_reads_fallback on the identical inputs (the "
            "pure-Python path the AWDIT_NO_NUMPY CI leg runs end to end)",
            "calls": micro.calls,
            "vectorized_seconds": round(micro.vectorized, 4),
            "fallback_seconds": round(micro.fallback, 4),
            "vectorized_speedup": round(micro.fallback / micro.vectorized, 3),
        },
        "resolve_counters": counters,
        "stream_cc_seconds_by_batch_ops": {
            "note": "best-of-3 wall seconds; identical verdict per column. "
            "The BENCH_7 cliff (64 slower than 1: 2.2982s vs 1.8679s) is "
            "gone -- mid-size batches now amortize the batched resolve -- "
            "at the honest cost of the batch_ops=1 column, which pays the "
            "kernel's fixed per-batch overhead once per transaction and "
            "is slower than its BENCH_7 value",
            "pr7_baseline": {
                key: sweep_baseline[key]
                for key in ("1", "64", str(DEFAULT_BATCH_OPS), "65536")
            },
            **by_batch_ops,
        },
        "stream_5x_fold_phase_seconds": {
            "note": "5x-fig9 arrival-order stream (BENCH_8's guard "
            "workload, regenerated from seed 11); perf_guard re-measures "
            "fold_classify against this",
            "transactions": stream_txns,
            "operations": stream_ops,
            "fold": round(stream_fold, 4),
            "fold_classify": round(stream_classify, 4),
        },
    }
    with open(BENCH9_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    results.record("bench9", "snapshot", snapshot)

    assert kernel_used == "vectorized", (
        f"numpy is importable but the stream reported the {kernel_used!r} "
        f"classify kernel"
    )
    assert classify_speedup >= CLASSIFY_GATE, (
        f"the fold_classify lap regressed past the {CLASSIFY_GATE}x noise "
        f"floor vs BENCH_7 "
        f"({classify_baseline}s at calibration {bench7_cal}s), best paired "
        f"round gave {classify_speedup:.2f}x ({classify_seconds:.3f}s at "
        f"calibration {cal_seconds:.4f}s)"
    )
    assert micro.fallback / micro.vectorized >= RESOLVE_MICRO_GATE, (
        f"resolve_reads must beat its own fallback on identical inputs: "
        f"{micro.vectorized:.3f}s vectorized vs {micro.fallback:.3f}s "
        f"fallback over {micro.calls} calls"
    )
    worst = max(by_batch_ops.values())
    assert by_batch_ops[str(DEFAULT_BATCH_OPS)] < worst, (
        f"the default batch_ops ({DEFAULT_BATCH_OPS}) must never be the "
        f"worst sweep column: {by_batch_ops}"
    )
    assert by_batch_ops["64"] <= by_batch_ops["1"], (
        f"the BENCH_7 mid-size cliff is back: 64-op batches "
        f"({by_batch_ops['64']}s) slower than single-op batches "
        f"({by_batch_ops['1']}s)"
    )
