"""Fig. 9 reproduction: scalability of AWDIT along three axes.

The paper measures AWDIT's running time while scaling (left) the number of
transactions with 100 sessions and bounded transaction size, (middle) the
number of sessions with the number of transactions fixed, and (right) the
number of operations per transaction with the history size fixed.  The
expected shapes are: linear in the number of transactions for every level;
growing with the session count for CC but flat for RC and RA; and flat in
the transaction size for all levels.

Each parametrized benchmark below is one point of one curve; the
pytest-benchmark table grouped per sub-experiment is the figure.  The
session-scaling and size-scaling shapes are additionally checked (loosely)
by the aggregation benchmarks at the end.
"""

from __future__ import annotations

import pytest

from repro.core import IsolationLevel, check

from conftest import make_history

# Benchmark suites are opt-in (see pytest.ini): the marker is declared on
# the module itself so collection behaves identically no matter which
# directory pytest is invoked from.
pytestmark = pytest.mark.bench

LEVELS = [
    IsolationLevel.READ_COMMITTED,
    IsolationLevel.READ_ATOMIC,
    IsolationLevel.CAUSAL_CONSISTENCY,
]

TXN_COUNTS = [512, 1024, 2048]
SESSION_COUNTS = [15, 30, 60]
TXN_SIZES = [(4, 1024), (8, 512), (16, 256), (32, 128)]  # (ops/txn, #txns): fixed history size

_session_times = {}
_size_times = {}


@pytest.mark.parametrize("transactions", TXN_COUNTS)
@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.short_name)
def test_fig9_left_time_vs_transactions(benchmark, results, level, transactions):
    """Left plot: running time as the number of transactions grows."""
    history = make_history("ctwitter", "cockroach", sessions=50, transactions=transactions)
    benchmark.group = f"fig9-left {level.short_name}"
    result = benchmark.pedantic(
        lambda: check(history, level), rounds=2, iterations=1, warmup_rounds=0
    )
    assert result.is_consistent
    results.record(
        "fig9-left", f"{level.short_name}/n={transactions}", round(benchmark.stats.stats.mean, 6)
    )


@pytest.mark.parametrize("sessions", SESSION_COUNTS)
@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.short_name)
def test_fig9_middle_time_vs_sessions(benchmark, results, level, sessions):
    """Middle plot: running time as the number of sessions grows (CC grows, RC/RA flat)."""
    history = make_history("ctwitter", "cockroach", sessions=sessions, transactions=2048)
    benchmark.group = f"fig9-middle {level.short_name}"
    result = benchmark.pedantic(
        lambda: check(history, level), rounds=2, iterations=1, warmup_rounds=0
    )
    assert result.is_consistent
    mean = benchmark.stats.stats.mean
    _session_times.setdefault(level.short_name, {})[sessions] = mean
    results.record("fig9-middle", f"{level.short_name}/k={sessions}", round(mean, 6))


@pytest.mark.parametrize("ops_per_txn,transactions", TXN_SIZES)
@pytest.mark.parametrize("level", LEVELS, ids=lambda l: l.short_name)
def test_fig9_right_time_vs_transaction_size(
    benchmark, results, level, ops_per_txn, transactions
):
    """Right plot: running time as the transaction size grows with fixed history size."""
    history = make_history(
        "custom",
        "cockroach",
        sessions=50,
        transactions=transactions,
        ops_per_transaction=ops_per_txn,
    )
    benchmark.group = f"fig9-right {level.short_name}"
    result = benchmark.pedantic(
        lambda: check(history, level), rounds=2, iterations=1, warmup_rounds=0
    )
    assert result.is_consistent
    mean = benchmark.stats.stats.mean
    _size_times.setdefault(level.short_name, {})[ops_per_txn] = mean
    results.record(
        "fig9-right", f"{level.short_name}/ops={ops_per_txn}", round(mean, 6)
    )


def test_fig9_shapes(benchmark, results):
    """Aggregate shape checks for the middle and right plots."""

    def shapes():
        summary = {}
        # Middle plot: RC and RA should be (roughly) unaffected by the session
        # count, while CC may grow with it.
        for level in ("RC", "RA"):
            times = _session_times.get(level, {})
            if len(times) >= 2:
                smallest = times[min(times)]
                largest = times[max(times)]
                summary[f"middle-{level}-growth"] = largest / max(smallest, 1e-9)
        cc_times = _session_times.get("CC", {})
        if len(cc_times) >= 2:
            summary["middle-CC-growth"] = cc_times[max(cc_times)] / max(
                cc_times[min(cc_times)], 1e-9
            )
        # Right plot: no blow-up as transactions get larger at fixed history size.
        for level, times in _size_times.items():
            if len(times) >= 2:
                summary[f"right-{level}-growth"] = times[max(times)] / max(
                    times[min(times)], 1e-9
                )
        return summary

    summary = benchmark.pedantic(shapes, rounds=1, iterations=1)
    for key, value in summary.items():
        results.record("fig9-shapes", key, round(value, 3))
    # RC / RA should not explode with the session count (paper: flat lines);
    # allow generous slack for Python timing noise.
    for level in ("RC", "RA"):
        growth = summary.get(f"middle-{level}-growth")
        if growth is not None:
            assert growth < 3.0, f"{level} time grew {growth:.1f}x with session count"
    # Transaction size should not cause a blow-up at fixed history size.
    for level in ("RC", "RA", "CC"):
        growth = summary.get(f"right-{level}-growth")
        if growth is not None:
            assert growth < 6.0, f"{level} time grew {growth:.1f}x with transaction size"
