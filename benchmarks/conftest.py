"""Shared fixtures and helpers for the benchmark harness.

Histories are expensive to generate, so they are produced once per parameter
combination and cached for the whole benchmark session.  A small results
collector appends the measured shapes (speedups, scaling slopes) to
``benchmarks/results.json`` so EXPERIMENTS.md can be cross-checked against a
concrete run.
"""

from __future__ import annotations

import json
import os
from functools import lru_cache
from typing import Dict

import pytest

from repro.db.profiles import profile_by_name, with_overrides
from repro.workloads import (
    CTwitterWorkload,
    RUBiSWorkload,
    ScalableTransactionWorkload,
    TPCCWorkload,
    collect_history,
)

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "results.json")


def _workload(name: str, **kwargs):
    if name == "tpcc":
        return TPCCWorkload(num_warehouses=2, num_items=60, **kwargs)
    if name == "ctwitter":
        return CTwitterWorkload(num_users=40, **kwargs)
    if name == "rubis":
        return RUBiSWorkload(num_users=30, num_items=90, **kwargs)
    if name == "custom":
        return ScalableTransactionWorkload(**kwargs)
    raise ValueError(name)


@lru_cache(maxsize=None)
def make_history(
    workload: str,
    database: str = "cockroach",
    sessions: int = 50,
    transactions: int = 1024,
    seed: int = 1,
    ops_per_transaction: int = 0,
):
    """Generate (and cache) one history for the given benchmark parameters."""
    kwargs = {}
    if workload == "custom" and ops_per_transaction:
        kwargs["ops_per_transaction"] = ops_per_transaction
        kwargs["num_keys"] = 400
    profile = with_overrides(profile_by_name(database), seed=seed)
    return collect_history(
        _workload(workload, **kwargs),
        profile,
        num_sessions=sessions,
        num_transactions=transactions,
        seed=seed,
    )


class ResultsCollector:
    """Accumulates named measurements and flushes them to ``results.json``."""

    def __init__(self) -> None:
        self.data: Dict[str, object] = {}

    def record(self, experiment: str, key: str, value) -> None:
        self.data.setdefault(experiment, {})[key] = value

    def flush(self) -> None:
        if not self.data:
            return
        existing = {}
        if os.path.exists(RESULTS_PATH):
            try:
                with open(RESULTS_PATH, "r", encoding="utf-8") as handle:
                    existing = json.load(handle)
            except (OSError, json.JSONDecodeError):
                existing = {}
        for experiment, values in self.data.items():
            existing.setdefault(experiment, {}).update(values)
        with open(RESULTS_PATH, "w", encoding="utf-8") as handle:
            json.dump(existing, handle, indent=2, sort_keys=True)


_collector = ResultsCollector()


@pytest.fixture(scope="session")
def results():
    """Session-wide results collector, flushed at the end of the run."""
    yield _collector
    _collector.flush()
