"""CI perf-regression guard for the compiled CC hot paths.

Re-measures compiled batch CC (against ``BENCH_5.json``) plus the
compiled streaming CC pipeline and its fold phase (against
``BENCH_6.json``, the columnar-ingestion era numbers) on the 120k-op
fig9-scale history, and fails (exit 1) when any of the three regresses
more than ``TOLERANCE``.  The committed baselines are first rescaled by
the machine-speed ratio of the :mod:`_calibration` kernel (its runtime
on this runner vs the runtime recorded alongside the baselines), so a
runner of a different hardware class compares against what *its own*
hardware should achieve, not the dev container's absolute seconds.  The
25% tolerance then only has to absorb run-to-run noise (shared CI
machines routinely jitter by 10-15%); a real regression from an
accidental hash-probe or label re-materialization on the hot path is
far larger than that.

Machines reporting fewer than 2 usable CPUs skip the guard (exit 0): a
single-CPU runner's timings swing too wildly for even a tolerant gate,
and the dev container this repo grows on is exactly such a machine.

Run as ``python benchmarks/perf_guard.py`` (the CI ``perf-guard`` job).
"""

from __future__ import annotations

import gc
import json
import os
import sys
import tempfile
import time

from _calibration import calibration_seconds

from repro.core import IsolationLevel
from repro.core.compiled.checkers import check_cc_compiled
from repro.core.compiled.ir import compile_history
from repro.histories.formats import save_history
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.shard.parallel import effective_cpus
from repro.stream import check_stream_file

TOLERANCE = 1.25  # fail when current > baseline * TOLERANCE
REPEATS = 3

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH5_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_5.json"))
BENCH6_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_6.json"))


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    cpus = effective_cpus()
    if cpus < 2:
        print(f"perf-guard: skipped ({cpus} CPU visible; timings too noisy)")
        return 0

    with open(BENCH5_PATH, encoding="utf-8") as handle:
        bench5 = json.load(handle)
    with open(BENCH6_PATH, encoding="utf-8") as handle:
        bench6 = json.load(handle)
    batch_baseline = bench5["check_cc_seconds"]["compiled_batch"]
    # The streaming gates moved to the BENCH_6 columnar-ingestion era:
    # the whole pipeline plus the fold phase on its own, so a fold
    # regression cannot hide behind a parse or finalize improvement.
    stream_baseline = bench6["check_cc_seconds"]["compiled_stream_pipeline"]
    fold_baseline = bench6["stream_fold_phase_seconds"]["fold"]

    # Rescale the committed baselines to this machine's speed: the same
    # calibration kernel ran when each snapshot was recorded, so the
    # ratio cancels the hardware class out of the comparison.
    local_cal = calibration_seconds()
    for snapshot, name in ((bench5, "BENCH_5"), (bench6, "BENCH_6")):
        recorded_cal = snapshot.get("machine_calibration_seconds")
        if not recorded_cal:
            continue
        scale = local_cal / recorded_cal
        print(
            f"perf-guard: calibration {local_cal:.4f}s vs {name} "
            f"{recorded_cal:.4f}s -> baseline scale {scale:.2f}x"
        )
        if snapshot is bench5:
            batch_baseline *= scale
        else:
            stream_baseline *= scale
            fold_baseline *= scale

    history = generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=15_000,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=11,
        )
    )
    ch = compile_history(history)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "large.plume")
        save_history(history, path, fmt="plume")
        batch_seconds = _best_of(lambda: check_cc_compiled(ch))
        # Match BENCH_6's recording conditions: the streaming pipeline is
        # measured without the object history or compiled IR alive, so
        # gen-2 GC passes don't walk 120k dead-weight objects mid-run.
        del ch, history
        gc.collect()
        # One profiled run set serves both streaming gates: the lap
        # bookkeeping adds only a few perf_counter calls per batch.
        stream_seconds = float("inf")
        fold_seconds = float("inf")
        for _ in range(REPEATS):
            timings = {}
            start = time.perf_counter()
            check_stream_file(
                path,
                IsolationLevel.CAUSAL_CONSISTENCY,
                fmt="plume",
                engine="compiled",
                timings=timings,
            )
            stream_seconds = min(stream_seconds, time.perf_counter() - start)
            fold_seconds = min(fold_seconds, timings["fold"])

    failed = False
    for name, current, committed in (
        ("compiled batch CC", batch_seconds, batch_baseline),
        ("compiled streaming CC pipeline", stream_seconds, stream_baseline),
        ("compiled streaming CC fold phase", fold_seconds, fold_baseline),
    ):
        ratio = current / committed
        status = "OK"
        if ratio > TOLERANCE:
            status = f"REGRESSION (> {TOLERANCE:.2f}x baseline)"
            failed = True
        print(
            f"perf-guard: {name}: {current:.3f}s vs committed {committed:.3f}s "
            f"({ratio:.2f}x) -- {status}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
