"""CI perf-regression guard for the compiled CC hot paths.

Re-measures compiled batch CC and compiled streaming CC on the 120k-op
fig9-scale history and fails (exit 1) when either regresses more than
``TOLERANCE`` against the baselines committed in ``BENCH_5.json``.  The
committed baselines are first rescaled by the machine-speed ratio of the
:mod:`_calibration` kernel (its runtime on this runner vs the runtime
recorded alongside the baselines), so a runner of a different hardware
class compares against what *its own* hardware should achieve, not the
dev container's absolute seconds.  The 25% tolerance then only has to
absorb run-to-run noise (shared CI machines routinely jitter by 10-15%);
a real regression from an accidental hash-probe or label
re-materialization on the hot path is far larger than that.

Machines reporting fewer than 2 usable CPUs skip the guard (exit 0): a
single-CPU runner's timings swing too wildly for even a tolerant gate,
and the dev container this repo grows on is exactly such a machine.

Run as ``python benchmarks/perf_guard.py`` (the CI ``perf-guard`` job).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time

from _calibration import calibration_seconds

from repro.core import IsolationLevel
from repro.core.compiled.checkers import check_cc_compiled
from repro.core.compiled.ir import compile_history
from repro.histories.formats import save_history
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.shard.parallel import effective_cpus
from repro.stream import check_stream_file

TOLERANCE = 1.25  # fail when current > baseline * TOLERANCE
REPEATS = 3

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH5_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_5.json"))


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    cpus = effective_cpus()
    if cpus < 2:
        print(f"perf-guard: skipped ({cpus} CPU visible; timings too noisy)")
        return 0

    with open(BENCH5_PATH, encoding="utf-8") as handle:
        bench5 = json.load(handle)
    baseline = bench5["check_cc_seconds"]
    batch_baseline = baseline["compiled_batch"]
    stream_baseline = baseline["compiled_stream_pipeline"]

    # Rescale the committed baselines to this machine's speed: the same
    # calibration kernel ran when the snapshot was recorded, so the ratio
    # cancels the hardware class out of the comparison.
    recorded_cal = bench5.get("machine_calibration_seconds")
    if recorded_cal:
        local_cal = calibration_seconds()
        scale = local_cal / recorded_cal
        print(
            f"perf-guard: calibration {local_cal:.4f}s vs recorded "
            f"{recorded_cal:.4f}s -> baseline scale {scale:.2f}x"
        )
        batch_baseline *= scale
        stream_baseline *= scale

    history = generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=15_000,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=11,
        )
    )
    ch = compile_history(history)
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "large.plume")
        save_history(history, path, fmt="plume")
        batch_seconds = _best_of(lambda: check_cc_compiled(ch))
        stream_seconds = _best_of(
            lambda: check_stream_file(
                path, IsolationLevel.CAUSAL_CONSISTENCY, fmt="plume", engine="compiled"
            )
        )

    failed = False
    for name, current, committed in (
        ("compiled batch CC", batch_seconds, batch_baseline),
        ("compiled streaming CC pipeline", stream_seconds, stream_baseline),
    ):
        ratio = current / committed
        status = "OK"
        if ratio > TOLERANCE:
            status = f"REGRESSION (> {TOLERANCE:.2f}x baseline)"
            failed = True
        print(
            f"perf-guard: {name}: {current:.3f}s vs committed {committed:.3f}s "
            f"({ratio:.2f}x) -- {status}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
