"""CI perf-regression guard for the compiled CC hot paths.

Re-measures compiled batch CC plus its saturation phase lap against
``BENCH_7.json`` (the vectorized-saturation era numbers) on the 120k-op
fig9-scale history, and the compiled streaming CC pipeline against
``BENCH_8.json`` (the retirement-era numbers) plus its fold and
classify phases against ``BENCH_10.json`` (the columnar-fold era) on
the 600k-op arrival-order stream those snapshots record, and fails
(exit 1) when any of the five regresses more than ``TOLERANCE``.
Gating the saturation, fold, and classify laps on their own means a
regression there cannot hide behind a happens-before or parse
improvement -- the exact failure mode that would reappear if a kernel
silently fell back to the pure-Python path (the guard also fails
outright when numpy is importable but the batch check reports a
fallback saturation kernel, the stream reports a fallback classify
kernel, or a synthetic 64-session clock join above the
``_MIN_JOIN_CELLS`` cutoff does not take the vectorized path).  The
committed baselines are first rescaled by the
machine-speed ratio of the :mod:`_calibration` kernel (its runtime on
this runner vs the runtime recorded alongside the baselines), so a
runner of a different hardware class compares against what *its own*
hardware should achieve, not the dev container's absolute seconds.  The
25% tolerance then only has to absorb run-to-run noise (shared CI
machines routinely jitter by 10-15%); a real regression from an
accidental hash-probe or label re-materialization on the hot path is
far larger than that.

Machines reporting fewer than 2 usable CPUs skip the guard (exit 0): a
single-CPU runner's timings swing too wildly for even a tolerant gate,
and the dev container this repo grows on is exactly such a machine.

Run as ``python benchmarks/perf_guard.py`` (the CI ``perf-guard`` job).
"""

from __future__ import annotations

import gc
import json
import os
import sys
import tempfile
import time

from _calibration import calibration_seconds

from repro.core import IsolationLevel
from repro.core.compiled import kernels
from repro.core.compiled.checkers import check_cc_compiled
from repro.core.compiled.ir import compile_history
from repro.histories.formats import plume_text
from repro.histories.generator import (
    RandomHistoryConfig,
    generate_random_history,
    generate_random_stream,
)
from repro.shard.parallel import effective_cpus
from repro.stream import check_stream_file

TOLERANCE = 1.25  # fail when current > baseline * TOLERANCE
REPEATS = 3

_ROOT = os.path.join(os.path.dirname(__file__), os.pardir)
BENCH7_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_7.json"))
BENCH8_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_8.json"))
BENCH10_PATH = os.path.abspath(os.path.join(_ROOT, "BENCH_10.json"))


def _best_of(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def main() -> int:
    cpus = effective_cpus()
    if cpus < 2:
        print(f"perf-guard: skipped ({cpus} CPU visible; timings too noisy)")
        return 0

    with open(BENCH7_PATH, encoding="utf-8") as handle:
        bench7 = json.load(handle)
    with open(BENCH8_PATH, encoding="utf-8") as handle:
        bench8 = json.load(handle)
    with open(BENCH10_PATH, encoding="utf-8") as handle:
        bench10 = json.load(handle)
    batch_baseline = bench7["check_cc_seconds"]["compiled_batch"]
    saturation_baseline = bench7["batch_cc_phase_seconds"]["saturation"]
    stream_baseline = bench8["check_cc_seconds"]["compiled_stream_pipeline"]
    # BENCH_10 recorded its fold and classify laps on this exact
    # workload (the 5x-fig9 arrival stream), so both gate like-for-like
    # against the columnar-fold era.
    fold_baseline = bench10["stream_5x_fold_phase_seconds"]["fold"]
    classify_baseline = bench10["stream_5x_fold_phase_seconds"]["fold_classify"]

    # Rescale the committed baselines to this machine's speed: the same
    # calibration kernel ran when each snapshot was recorded, so the
    # ratio cancels the hardware class out of the comparison (BENCH_7
    # and BENCH_8 each carry their own recorded calibration).
    local_cal = calibration_seconds()
    for snapshot, name in (
        (bench7, "BENCH_7"),
        (bench8, "BENCH_8"),
        (bench10, "BENCH_10"),
    ):
        recorded_cal = snapshot.get("machine_calibration_seconds")
        if not recorded_cal:
            continue
        scale = local_cal / recorded_cal
        print(
            f"perf-guard: calibration {local_cal:.4f}s vs {name} "
            f"{recorded_cal:.4f}s -> baseline scale {scale:.2f}x"
        )
        if snapshot is bench7:
            batch_baseline *= scale
            saturation_baseline *= scale
        elif snapshot is bench8:
            stream_baseline *= scale
        else:
            fold_baseline *= scale
            classify_baseline *= scale

    history = generate_random_history(
        RandomHistoryConfig(
            num_sessions=8,
            num_transactions=15_000,
            num_keys=500,
            min_ops_per_txn=6,
            max_ops_per_txn=10,
            read_fraction=0.5,
            mode="serializable",
            seed=11,
        )
    )
    ch = compile_history(history)
    with tempfile.TemporaryDirectory() as tmp:
        # One profiled run set serves both batch gates: the phase laps
        # add only a few perf_counter calls around tenths of work.
        batch_seconds = float("inf")
        saturation_seconds = float("inf")
        kernel_used = None
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = check_cc_compiled(ch)
            batch_seconds = min(batch_seconds, time.perf_counter() - start)
            saturation_seconds = min(saturation_seconds, result.stats["saturation"])
            kernel_used = result.stats["saturation_kernel"]
        del ch, history, result

        # The streaming gates replay BENCH_8's workload: the 5x-fig9
        # arrival-order stream (75k transactions, ~600k operations).
        stream_shape = bench8["streams"]["base"]
        stream_history, order = generate_random_stream(
            RandomHistoryConfig(
                num_sessions=8,
                num_transactions=stream_shape["transactions"],
                num_keys=500,
                min_ops_per_txn=6,
                max_ops_per_txn=10,
                read_fraction=0.5,
                mode="serializable",
                seed=11,
            )
        )
        path = os.path.join(tmp, "stream.plume")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(plume_text.dumps(stream_history, order=order))
        # Match BENCH_8's recording conditions: the streaming pipeline is
        # measured without the generated history alive, so gen-2 GC passes
        # don't walk 600k dead-weight objects mid-run.
        del stream_history, order
        gc.collect()
        stream_seconds = float("inf")
        fold_seconds = float("inf")
        classify_seconds = float("inf")
        classify_kernel = None
        for _ in range(REPEATS):
            timings = {}
            start = time.perf_counter()
            stream_result = check_stream_file(
                path,
                IsolationLevel.CAUSAL_CONSISTENCY,
                fmt="plume",
                engine="compiled",
                timings=timings,
            )
            stream_seconds = min(stream_seconds, time.perf_counter() - start)
            fold_seconds = min(fold_seconds, timings["fold"])
            classify_seconds = min(classify_seconds, timings["fold_classify"])
            classify_kernel = stream_result.stats.get("classify_kernel")

    failed = False
    if kernels.HAVE_NUMPY and kernel_used != "vectorized":
        print(
            f"perf-guard: numpy is importable but the batch check reported "
            f"the {kernel_used!r} saturation kernel -- REGRESSION"
        )
        failed = True
    if kernels.HAVE_NUMPY and classify_kernel != "vectorized":
        print(
            f"perf-guard: numpy is importable but the stream reported the "
            f"{classify_kernel!r} classify kernel -- REGRESSION"
        )
        failed = True
    if kernels.HAVE_NUMPY:
        # The 8-session guard streams legitimately stay on the scalar
        # clock join (below _MIN_JOIN_CELLS), so the vectorized path is
        # tripwired directly: a synthetic 64-session join of 64 writer
        # rows (4096 cells, above the cutoff) must report vectorized.
        from array import array

        stride = 64
        hb_data = array("q", [(i * 7 + s * 3) % 97 - 1 for i in range(64) for s in range(stride)])
        sc_data = array("q", [(s * 5) % 89 - 1 for s in range(stride)])
        rows = list(range(64))
        wsids = [i % stride for i in range(64)]
        wsidxs = [(i * 11) % 103 for i in range(64)]
        joined, vectorized = kernels.join_clocks(
            hb_data, stride, sc_data, 0, rows, wsids, wsidxs
        )
        expected = kernels._join_clocks_fallback(
            hb_data, stride, array("q", sc_data), 0, rows, wsids, wsidxs
        )
        if not vectorized:
            print(
                "perf-guard: numpy is importable but a 4096-cell clock "
                "join took the fallback path -- REGRESSION"
            )
            failed = True
        if list(joined) != list(expected):
            print(
                "perf-guard: vectorized clock join disagrees with the "
                "fallback on the synthetic 64-session join -- REGRESSION"
            )
            failed = True
    for name, current, committed in (
        ("compiled batch CC", batch_seconds, batch_baseline),
        ("compiled batch CC saturation phase", saturation_seconds, saturation_baseline),
        ("compiled streaming CC pipeline", stream_seconds, stream_baseline),
        ("compiled streaming CC fold phase", fold_seconds, fold_baseline),
        ("compiled streaming CC classify phase", classify_seconds, classify_baseline),
    ):
        ratio = current / committed
        status = "OK"
        if ratio > TOLERANCE:
            status = f"REGRESSION (> {TOLERANCE:.2f}x baseline)"
            failed = True
        print(
            f"perf-guard: {name}: {current:.3f}s vs committed {committed:.3f}s "
            f"({ratio:.2f}x) -- {status}"
        )
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
