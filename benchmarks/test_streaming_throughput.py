"""Streaming vs. batch checking throughput on large on-disk logs.

The streaming engine must not give up meaningful throughput for its
bounded-memory, one-pass operation: the acceptance bar is a ≥100k-operation
log checked via the streaming parsers at throughput within 2x of the batch
pipeline (load + check).  Measured txns/sec for both pipelines are recorded
in ``results.json``.
"""

from __future__ import annotations

import time

import pytest

from repro.core import IsolationLevel, check
from repro.histories.formats import load_history, save_history, stream_history
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.stream import check_stream

LEVELS = list(IsolationLevel)


def _large_history(num_transactions: int = 15_000, seed: int = 11):
    """A ≥100k-operation history (~8 ops/txn) with realistic read mix."""
    config = RandomHistoryConfig(
        num_sessions=8,
        num_transactions=num_transactions,
        num_keys=500,
        min_ops_per_txn=6,
        max_ops_per_txn=10,
        read_fraction=0.5,
        mode="serializable",
        seed=seed,
    )
    return generate_random_history(config)


@pytest.mark.parametrize("fmt,ext", [("plume", ".plume"), ("native", ".json")])
@pytest.mark.parametrize("level", LEVELS, ids=[lvl.short_name for lvl in LEVELS])
def test_streaming_throughput_within_2x_of_batch(tmp_path, results, fmt, ext, level):
    history = _large_history()
    assert history.num_operations >= 100_000
    path = tmp_path / f"large{ext}"
    save_history(history, str(path), fmt=fmt)

    start = time.perf_counter()
    loaded = load_history(str(path), fmt=fmt)
    batch_result = check(loaded, level)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stream_result = check_stream(stream_history(str(path), fmt=fmt), level)
    stream_seconds = time.perf_counter() - start

    assert stream_result.is_consistent == batch_result.is_consistent
    txns = history.num_transactions
    results.record(
        "streaming_throughput",
        f"{fmt}_{level.short_name}",
        {
            "operations": history.num_operations,
            "batch_txns_per_sec": txns / batch_seconds,
            "stream_txns_per_sec": txns / stream_seconds,
            "slowdown": stream_seconds / batch_seconds,
        },
    )
    assert stream_seconds <= 2.0 * batch_seconds, (
        f"streaming took {stream_seconds:.2f}s vs batch {batch_seconds:.2f}s "
        f"(> 2x) for {fmt}/{level.short_name}"
    )


def test_streaming_violation_detection_throughput(tmp_path, results):
    """Streaming stays within 2x of batch on an anomalous history too."""
    config = RandomHistoryConfig(
        num_sessions=8,
        num_transactions=15_000,
        num_keys=500,
        min_ops_per_txn=6,
        max_ops_per_txn=10,
        read_fraction=0.5,
        mode="random_reads",
        seed=12,
    )
    history = generate_random_history(config)
    path = tmp_path / "anomalous.plume"
    save_history(history, str(path), fmt="plume")

    start = time.perf_counter()
    loaded = load_history(str(path), fmt="plume")
    batch_result = check(loaded, IsolationLevel.CAUSAL_CONSISTENCY)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stream_result = check_stream(
        stream_history(str(path), fmt="plume"), IsolationLevel.CAUSAL_CONSISTENCY
    )
    stream_seconds = time.perf_counter() - start

    assert stream_result.is_consistent == batch_result.is_consistent
    assert sorted(v.kind.name for v in stream_result.violations) == sorted(
        v.kind.name for v in batch_result.violations
    )
    results.record(
        "streaming_throughput",
        "anomalous_CC",
        {"slowdown": stream_seconds / batch_seconds},
    )
    assert stream_seconds <= 2.0 * batch_seconds
