"""Streaming vs. batch checking throughput on large on-disk logs.

The streaming engine must not give up meaningful throughput for its
bounded-memory, one-pass operation: the acceptance bar is a ≥100k-operation
log checked via the streaming parsers at throughput within 2x of the batch
pipeline (load + check).  Measured txns/sec for both pipelines are recorded
in ``results.json``.

``test_bench2_snapshot`` additionally records the cross-PR perf trajectory
in the repo-root ``BENCH_2.json``: object-path vs compiled-IR vs streaming
throughput on the 120k-op log, plus peak checking memory (tracemalloc, the
in-process proxy for peak RSS) on the small-transaction log, where streaming
CC must not exceed batch.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc

import pytest

from repro.core import IsolationLevel, check
from repro.histories.formats import (
    load_compiled,
    load_history,
    save_history,
    stream_history,
)
from repro.histories.generator import RandomHistoryConfig, generate_random_history
from repro.stream import check_stream

BENCH2_PATH = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_2.json")
)

# Benchmark suites are opt-in (see pytest.ini): the marker is declared on
# the module itself so collection behaves identically no matter which
# directory pytest is invoked from.
pytestmark = pytest.mark.bench

LEVELS = list(IsolationLevel)


def _large_history(num_transactions: int = 15_000, seed: int = 11):
    """A ≥100k-operation history (~8 ops/txn) with realistic read mix."""
    config = RandomHistoryConfig(
        num_sessions=8,
        num_transactions=num_transactions,
        num_keys=500,
        min_ops_per_txn=6,
        max_ops_per_txn=10,
        read_fraction=0.5,
        mode="serializable",
        seed=seed,
    )
    return generate_random_history(config)


@pytest.mark.parametrize("fmt,ext", [("plume", ".plume"), ("native", ".json")])
@pytest.mark.parametrize("level", LEVELS, ids=[lvl.short_name for lvl in LEVELS])
def test_streaming_throughput_within_2x_of_batch(tmp_path, results, fmt, ext, level):
    history = _large_history()
    assert history.num_operations >= 100_000
    path = tmp_path / f"large{ext}"
    save_history(history, str(path), fmt=fmt)

    start = time.perf_counter()
    loaded = load_history(str(path), fmt=fmt)
    batch_result = check(loaded, level)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stream_result = check_stream(stream_history(str(path), fmt=fmt), level)
    stream_seconds = time.perf_counter() - start

    assert stream_result.is_consistent == batch_result.is_consistent
    txns = history.num_transactions
    results.record(
        "streaming_throughput",
        f"{fmt}_{level.short_name}",
        {
            "operations": history.num_operations,
            "batch_txns_per_sec": txns / batch_seconds,
            "stream_txns_per_sec": txns / stream_seconds,
            "slowdown": stream_seconds / batch_seconds,
        },
    )
    assert stream_seconds <= 2.0 * batch_seconds, (
        f"streaming took {stream_seconds:.2f}s vs batch {batch_seconds:.2f}s "
        f"(> 2x) for {fmt}/{level.short_name}"
    )


def _peak_mem(fn):
    """Run ``fn`` and return (result, peak traced bytes)."""
    tracemalloc.start()
    try:
        result = fn()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, peak


def test_bench2_snapshot(tmp_path, results):
    """Record the per-PR perf snapshot in the repo-root ``BENCH_2.json``.

    Acceptance gates of the compiled-core PR, measured here:

    * ``check(history, CC)`` via the compiled IR is >= 1.5x faster than the
      object path on the fig9-scale (120k-op) generated history;
    * streaming CC peak checking memory is <= batch on the small-transaction
      log (the ROADMAP's inferred-edge-log RSS item).
    """
    cc = IsolationLevel.CAUSAL_CONSISTENCY

    # -- throughput on the 120k-op log (pure check(), engine vs engine) -------
    # Fresh History objects per timing: the object model caches derived
    # structures (txn-level wr) on first use, which would flatter repeats.
    # Engines are interleaved and the best of three kept, so a noisy or
    # throttled machine cannot skew one side of the comparison.
    object_times = []
    compiled_times = []
    for _ in range(3):
        object_times.append(
            _timed(lambda h=_large_history(): check(h, cc, engine="object"))
        )
        compiled_times.append(
            _timed(lambda h=_large_history(): check(h, cc, engine="compiled"))
        )
    object_seconds = min(object_times)
    compiled_seconds = min(compiled_times)
    history = _large_history()
    txns, ops = history.num_transactions, history.num_operations
    path = tmp_path / "large.plume"
    save_history(history, str(path), fmt="plume")

    # -- end-to-end file pipelines (parse + check) ----------------------------
    start = time.perf_counter()
    batch_result = check(load_history(str(path), fmt="plume"), cc, engine="object")
    batch_pipeline = time.perf_counter() - start
    start = time.perf_counter()
    compiled_result = check(load_compiled(str(path), fmt="plume"), cc)
    compiled_pipeline = time.perf_counter() - start
    start = time.perf_counter()
    stream_result = check_stream(stream_history(str(path), fmt="plume"), cc)
    stream_pipeline = time.perf_counter() - start
    assert (
        batch_result.is_consistent
        == compiled_result.is_consistent
        == stream_result.is_consistent
    )

    # -- peak checking memory on the small-transaction log --------------------
    small = RandomHistoryConfig(
        num_sessions=8,
        num_transactions=15_000,
        num_keys=500,
        min_ops_per_txn=2,
        max_ops_per_txn=3,
        read_fraction=0.5,
        mode="serializable",
        seed=11,
    )
    small_path = tmp_path / "small.plume"
    save_history(generate_random_history(small), str(small_path), fmt="plume")
    _, batch_peak = _peak_mem(
        lambda: check(load_history(str(small_path), fmt="plume"), cc, engine="object")
    )
    _, compiled_peak = _peak_mem(
        lambda: check(load_compiled(str(small_path), fmt="plume"), cc)
    )
    _, stream_peak = _peak_mem(
        lambda: check_stream(stream_history(str(small_path), fmt="plume"), cc)
    )

    speedup = object_seconds / compiled_seconds
    snapshot = {
        "generated_by": "benchmarks/test_streaming_throughput.py::test_bench2_snapshot",
        "history": {
            "transactions": txns,
            "operations": ops,
            "sessions": 8,
            "mode": "serializable",
        },
        "check_cc_seconds": {
            "object": round(object_seconds, 4),
            "compiled": round(compiled_seconds, 4),
            "compiled_speedup": round(speedup, 3),
        },
        "pipeline_txns_per_sec": {
            "batch_object": round(txns / batch_pipeline, 1),
            "compiled": round(txns / compiled_pipeline, 1),
            "stream": round(txns / stream_pipeline, 1),
        },
        "peak_checking_mem_bytes": {
            "note": "tracemalloc peak (in-process RSS proxy), CC on the "
            "small-transaction log (15k txns, 2-3 ops each)",
            "batch_object": batch_peak,
            "compiled": compiled_peak,
            "stream": stream_peak,
            "stream_over_batch": round(stream_peak / batch_peak, 3),
        },
    }
    with open(BENCH2_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2)
        handle.write("\n")
    results.record("bench2", "snapshot", snapshot)

    assert speedup >= 1.5, (
        f"compiled CC check must be >=1.5x the object path, got {speedup:.2f}x"
    )
    assert stream_peak <= batch_peak, (
        f"streaming CC peak memory {stream_peak} must not exceed batch {batch_peak}"
    )


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_streaming_violation_detection_throughput(tmp_path, results):
    """Streaming stays within 2x of batch on an anomalous history too."""
    config = RandomHistoryConfig(
        num_sessions=8,
        num_transactions=15_000,
        num_keys=500,
        min_ops_per_txn=6,
        max_ops_per_txn=10,
        read_fraction=0.5,
        mode="random_reads",
        seed=12,
    )
    history = generate_random_history(config)
    path = tmp_path / "anomalous.plume"
    save_history(history, str(path), fmt="plume")

    start = time.perf_counter()
    loaded = load_history(str(path), fmt="plume")
    batch_result = check(loaded, IsolationLevel.CAUSAL_CONSISTENCY)
    batch_seconds = time.perf_counter() - start

    start = time.perf_counter()
    stream_result = check_stream(
        stream_history(str(path), fmt="plume"), IsolationLevel.CAUSAL_CONSISTENCY
    )
    stream_seconds = time.perf_counter() - start

    assert stream_result.is_consistent == batch_result.is_consistent
    assert sorted(v.kind.name for v in stream_result.violations) == sorted(
        v.kind.name for v in batch_result.violations
    )
    results.record(
        "streaming_throughput",
        "anomalous_CC",
        {"slowdown": stream_seconds / batch_seconds},
    )
    assert stream_seconds <= 2.0 * batch_seconds
